//! The shared cloud environment: services + meters + timing sources.

use crate::direct::DirectNet;
use crate::fault::{FaultPlan, FaultPlane};
use crate::latency::{Jitter, LatencyModel};
use crate::meter::{MeterSnapshot, ServiceMeter};
use crate::object::ObjectStore;
use crate::pubsub::PubSub;
use crate::queue::SqsQueue;
use crate::stream::WeightNet;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of a simulated cloud region.
#[derive(Debug, Clone, Copy)]
pub struct CloudConfig {
    /// Service latency/bandwidth model.
    pub latency: LatencyModel,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Number of parallel pub-sub topics (the paper uses 10).
    pub n_topics: usize,
    /// Number of object-storage buckets (the paper uses 10).
    pub n_buckets: usize,
    /// Optional seeded fault-injection plan (chaos testing). `None`
    /// draws nothing and adds no overhead.
    pub faults: Option<FaultPlan>,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            latency: LatencyModel::default(),
            seed: 0,
            n_topics: 10,
            n_buckets: 10,
            faults: None,
        }
    }
}

impl CloudConfig {
    /// Jitter-free configuration for deterministic tests and validation.
    pub fn deterministic(seed: u64) -> CloudConfig {
        CloudConfig {
            latency: LatencyModel::deterministic(),
            seed,
            ..CloudConfig::default()
        }
    }

    /// Arms the fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> CloudConfig {
        self.faults = Some(plan);
        self
    }
}

/// One simulated cloud region holding all communication services. Shared
/// (via `Arc`) by every FaaS worker thread in a run.
pub struct CloudEnv {
    config: CloudConfig,
    meter: Arc<ServiceMeter>,
    jitter: Arc<Jitter>,
    faults: Arc<FaultPlane>,
    pubsub: PubSub,
    store: ObjectStore,
    direct: DirectNet,
    weights: WeightNet,
    queues: Mutex<HashMap<String, Arc<SqsQueue>>>,
}

impl CloudEnv {
    /// Brings up a region: pre-creates topics and buckets (named
    /// `bucket-{i}`), mirroring the paper's pre-created resources.
    pub fn new(config: CloudConfig) -> Arc<CloudEnv> {
        let meter = Arc::new(ServiceMeter::new());
        let jitter = Arc::new(Jitter::new(config.seed, config.latency.jitter));
        let faults = Arc::new(FaultPlane::new(config.faults));
        let pubsub = PubSub::new(
            config.n_topics,
            meter.clone(),
            config.latency,
            jitter.clone(),
            faults.clone(),
        );
        let store = ObjectStore::new(
            meter.clone(),
            config.latency,
            jitter.clone(),
            faults.clone(),
        );
        for i in 0..config.n_buckets {
            store.create_bucket(&bucket_name(i));
        }
        let direct = DirectNet::new(
            meter.clone(),
            config.latency,
            jitter.clone(),
            faults.clone(),
        );
        let weights = WeightNet::new(
            meter.clone(),
            config.latency,
            jitter.clone(),
            faults.clone(),
        );
        Arc::new(CloudEnv {
            config,
            meter,
            jitter,
            faults,
            pubsub,
            store,
            direct,
            weights,
            queues: Mutex::new(HashMap::new()),
        })
    }

    /// The region's configuration.
    pub fn config(&self) -> &CloudConfig {
        &self.config
    }

    /// The latency model used by all services.
    pub fn latency(&self) -> &LatencyModel {
        &self.config.latency
    }

    /// The shared billing meter.
    pub fn meter(&self) -> &ServiceMeter {
        &self.meter
    }

    /// Convenience: snapshot of the billing meter.
    pub fn snapshot(&self) -> MeterSnapshot {
        self.meter.snapshot()
    }

    /// Convenience: the billing events attributed to one request flow.
    pub fn flow_snapshot(&self, flow: u64) -> MeterSnapshot {
        self.meter.flow_snapshot(flow)
    }

    /// Convenience: removes a flow's billing bucket, returning its final
    /// window (request teardown).
    pub fn release_flow(&self, flow: u64) -> MeterSnapshot {
        self.meter.release_flow(flow)
    }

    /// The deterministic jitter stream (shared by FaaS timing too).
    pub fn jitter(&self) -> &Arc<Jitter> {
        &self.jitter
    }

    /// The region's fault-injection plane (inert unless a plan or a
    /// targeted schedule is armed).
    pub fn faults(&self) -> &FaultPlane {
        &self.faults
    }

    /// The pub-sub service.
    pub fn pubsub(&self) -> &PubSub {
        &self.pubsub
    }

    /// The object store.
    pub fn object_store(&self) -> &ObjectStore {
        &self.store
    }

    /// The direct-exchange fabric (punched connections).
    pub fn direct(&self) -> &DirectNet {
        &self.direct
    }

    /// The weight-multicast fabric (cold-launch weight streaming).
    pub fn weight_net(&self) -> &WeightNet {
        &self.weights
    }

    /// Creates (or returns) the queue with the given name. Queues are
    /// pre-created per worker before inference, at no idle cost.
    pub fn queue(&self, name: &str) -> Arc<SqsQueue> {
        self.queues
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(SqsQueue::new(
                    name.to_string(),
                    self.meter.clone(),
                    self.config.latency,
                    self.jitter.clone(),
                    self.faults.clone(),
                ))
            })
            .clone()
    }

    /// Removes a queue from the region (request teardown). Live `Arc`
    /// handles held by straggler workers stay valid; the queue simply stops
    /// being discoverable. Returns the removed queue, if any.
    pub fn remove_queue(&self, name: &str) -> Option<Arc<SqsQueue>> {
        self.queues.lock().remove(name)
    }

    /// Number of live queues in the region (diagnostics/tests).
    pub fn queue_count(&self) -> usize {
        self.queues.lock().len()
    }

    /// Leak audit: everything per-request still alive in the region, as
    /// human-readable descriptions. Empty means clean.
    ///
    /// Covered: live queues, filter-policy subscriptions on every topic,
    /// objects left in the data buckets (`bucket-{i}`), and per-flow
    /// billing buckets still tracked by the meter. Buckets outside the
    /// `bucket-{i}` set (e.g. the artifact bucket holding staged model
    /// weights) are deliberately long-lived and not audited.
    ///
    /// The audit requires quiescence: it must not run while requests are
    /// in flight, or their legitimately-live resources read as leaks. The
    /// serving path therefore never calls it; `tests/residue.rs` does,
    /// after teardown.
    pub fn residue_report(&self) -> Vec<String> {
        let mut residue = Vec::new();
        let queues = self.queue_count();
        if queues > 0 {
            residue.push(format!("{queues} live queue(s)"));
        }
        for t in 0..self.pubsub.n_topics() {
            let subs = self.pubsub.subscription_count(t);
            if subs > 0 {
                residue.push(format!(
                    "{subs} subscription(s) on {}",
                    crate::pubsub::topic_name(t)
                ));
            }
        }
        for i in 0..self.config.n_buckets {
            let name = bucket_name(i);
            let objects = self.store.object_count(&name);
            if objects > 0 {
                residue.push(format!("{objects} object(s) in {name}"));
            }
        }
        let conns = self.direct.connection_count();
        if conns > 0 {
            residue.push(format!("{conns} punched direct connection(s)"));
        }
        let frames = self.direct.undrained_frames();
        if frames > 0 {
            residue.push(format!("{frames} undrained direct frame(s)"));
        }
        let weight_frames = self.weights.undrained_frames();
        if weight_frames > 0 {
            residue.push(format!("{weight_frames} undrained weight frame(s)"));
        }
        let flows = self.meter.tracked_flows();
        if flows > 0 {
            residue.push(format!("{flows} tracked billing flow(s)"));
        }
        residue
    }

    /// Debug-mode leak audit: asserts [`CloudEnv::residue_report`] is empty,
    /// listing every leak otherwise. See there for coverage and the
    /// quiescence requirement.
    pub fn assert_no_residue(&self) {
        let residue = self.residue_report();
        assert!(
            residue.is_empty(),
            "cloud residue after teardown: {}",
            residue.join("; ")
        );
    }

    /// Purges all queues and intermediate objects (between repetitions).
    ///
    /// Test/benchmark utility only: it wipes state globally, so it must
    /// never run while any request is in flight. The serving path isolates
    /// requests by flow id and tears down per-request resources instead.
    pub fn reset_channels(&self) {
        for q in self.queues.lock().values() {
            q.purge();
        }
        for i in 0..self.config.n_buckets {
            self.store.delete_prefix(&bucket_name(i), "");
        }
        self.direct.reset();
        self.weights.reset();
    }
}

/// Canonical bucket naming: `bucket-{i}` as in the paper's examples.
pub fn bucket_name(i: usize) -> String {
    format!("bucket-{i}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VClock;

    #[test]
    fn env_precreates_buckets_and_topics() {
        let env = CloudEnv::new(CloudConfig::deterministic(1));
        assert_eq!(env.pubsub().n_topics(), 10);
        for i in 0..10 {
            assert!(
                env.object_store().bucket_exists(&bucket_name(i)),
                "bucket {i}"
            );
        }
    }

    #[test]
    fn queue_is_created_once_and_shared() {
        let env = CloudEnv::new(CloudConfig::deterministic(1));
        let a = env.queue("worker-3");
        let b = env.queue("worker-3");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.name(), "worker-3");
    }

    #[test]
    fn reset_channels_clears_state() {
        let env = CloudEnv::new(CloudConfig::deterministic(1));
        let q = env.queue("w");
        q.enqueue(
            crate::time::VirtualTime::ZERO,
            crate::message::Message {
                attributes: crate::message::MessageAttributes {
                    flow: 0,
                    source: 0,
                    target: 0,
                    layer: 0,
                    total_chunks: 1,
                    batch: 0,
                },
                body: vec![1],
            },
        );
        let mut clock = VClock::default();
        env.object_store()
            .put(&bucket_name(0), "x", &b"y"[..], &mut clock)
            .expect("put");
        env.reset_channels();
        assert_eq!(q.visible_len(), 0);
        assert_eq!(env.object_store().object_count(&bucket_name(0)), 0);
    }

    #[test]
    fn meter_is_shared_across_services() {
        let env = CloudEnv::new(CloudConfig::deterministic(1));
        let mut clock = VClock::default();
        env.object_store()
            .put(&bucket_name(1), "k", &b"v"[..], &mut clock)
            .expect("put");
        let q = env.queue("w0");
        q.poll(&mut clock, crate::queue::PollKind::Short);
        let snap = env.snapshot();
        assert_eq!(snap.s3_put_requests, 1);
        assert_eq!(snap.sqs_api_calls, 1);
    }
}
