//! Virtual time.
//!
//! Cloud latencies are *modeled*, not slept: workers run at full speed on
//! real threads while each carries a [`VClock`] measuring simulated wall
//! time in microseconds. Payloads moving through simulated services carry a
//! [`VirtualTime`] availability stamp; receivers join their clock against it
//! (`clock = max(clock + latency, stamp)`), which is the standard
//! conservative scheme for distributed virtual-time simulation.

use std::fmt;

/// A point in simulated time, in microseconds since the run began.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Time zero.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Builds from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> VirtualTime {
        VirtualTime(us)
    }

    /// Builds from (possibly fractional) milliseconds.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> VirtualTime {
        VirtualTime((ms * 1_000.0).round().max(0.0) as u64)
    }

    /// Builds from (possibly fractional) seconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> VirtualTime {
        VirtualTime((s * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Microsecond count.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as `f64` (reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Milliseconds as `f64` (reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating addition of a duration in microseconds.
    #[inline]
    pub fn plus_micros(self, us: u64) -> VirtualTime {
        VirtualTime(self.0.saturating_add(us))
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// A worker's private simulated clock.
///
/// Besides the time, the clock carries the **flow id** of the request its
/// worker belongs to: every metered service call takes `&mut VClock`, so
/// the flow travels to the billing meters without threading an extra
/// parameter through each call site. Flow `0` means "unattributed" (tests,
/// offline tooling, baselines).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VClock {
    now: VirtualTime,
    flow: u64,
}

impl VClock {
    /// A clock starting at `t` in the unattributed flow.
    pub fn starting_at(t: VirtualTime) -> VClock {
        VClock { now: t, flow: 0 }
    }

    /// The request flow this clock's billable events are attributed to.
    #[inline]
    pub fn flow(&self) -> u64 {
        self.flow
    }

    /// Attributes subsequent billable events to `flow` (the FaaS platform
    /// stamps each worker's clock with its function's flow at launch).
    #[inline]
    pub fn set_flow(&mut self, flow: u64) {
        self.flow = flow;
    }

    /// Builder form of [`VClock::set_flow`] — used when deriving side
    /// clocks (e.g. a channel's modeled sender thread pool) that must keep
    /// billing to the originating request.
    #[inline]
    pub fn with_flow(mut self, flow: u64) -> VClock {
        self.flow = flow;
        self
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Advances by a duration in microseconds.
    #[inline]
    pub fn advance_micros(&mut self, us: u64) {
        self.now = self.now.plus_micros(us);
    }

    /// Advances by fractional seconds (compute-model output).
    #[inline]
    pub fn advance_secs_f64(&mut self, s: f64) {
        self.advance_micros((s * 1_000_000.0).round().max(0.0) as u64);
    }

    /// Joins an observed timestamp: the clock never moves backwards, and
    /// observing a message stamped in the (virtual) future pulls the clock
    /// forward to it — the receiver must have waited at least that long.
    #[inline]
    pub fn observe(&mut self, ts: VirtualTime) {
        if ts > self.now {
            self.now = ts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(VirtualTime::from_micros(1500).as_micros(), 1500);
        assert_eq!(VirtualTime::from_millis_f64(1.5).as_micros(), 1500);
        assert_eq!(VirtualTime::from_secs_f64(0.0015).as_micros(), 1500);
        assert!((VirtualTime::from_micros(2_500_000).as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn negative_durations_clamp_to_zero() {
        assert_eq!(VirtualTime::from_millis_f64(-5.0), VirtualTime::ZERO);
        assert_eq!(VirtualTime::from_secs_f64(-1.0), VirtualTime::ZERO);
    }

    #[test]
    fn clock_advances_and_joins() {
        let mut c = VClock::default();
        c.advance_micros(100);
        assert_eq!(c.now().as_micros(), 100);
        c.observe(VirtualTime::from_micros(50)); // past: no-op
        assert_eq!(c.now().as_micros(), 100);
        c.observe(VirtualTime::from_micros(400)); // future: jump forward
        assert_eq!(c.now().as_micros(), 400);
        c.advance_secs_f64(0.001);
        assert_eq!(c.now().as_micros(), 1400);
    }

    #[test]
    fn saturating_addition() {
        let t = VirtualTime(u64::MAX - 1);
        assert_eq!(t.plus_micros(100).as_micros(), u64::MAX);
    }

    #[test]
    fn clock_carries_its_flow() {
        let mut c = VClock::default();
        assert_eq!(c.flow(), 0, "default clock is unattributed");
        c.set_flow(7);
        c.advance_micros(100);
        assert_eq!(c.flow(), 7, "time movement must not lose the flow");
        assert_eq!(VClock::starting_at(VirtualTime::from_micros(5)).flow(), 0);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(VirtualTime::from_micros(1500).to_string(), "1.500ms");
    }
}
