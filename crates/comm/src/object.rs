//! S3-like object storage.
//!
//! FSD-Inf-Object spreads intermediate-result files over multiple buckets
//! (`bucket-{n % 10}`) and per-target prefixes; each worker scans a single
//! prefix with LIST and reads `.dat` files with GET (never the 0-byte
//! `.nul` markers). PUT/GET/LIST are billed per request regardless of
//! object size — the economics the paper's cost model builds on.
//!
//! Visibility follows virtual time: an object written at virtual time `t`
//! is visible to LIST/GET calls whose clock has reached `t` (read-after-
//! write consistency in simulated time, preventing causality violations
//! between workers whose clocks have drifted apart).

use crate::fault::{ApiClass, FaultPlane};
use crate::latency::{Jitter, LatencyModel};
use crate::message::CommError;
use crate::meter::ServiceMeter;
use crate::time::{VClock, VirtualTime};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Real-time wait before an empty LIST returns (prevents busy-spinning
/// while producer threads catch up; virtual cost is modeled separately).
const REAL_WAIT: Duration = Duration::from_millis(2);

/// Real-time grace used by [`ObjectStore::list_wait`] before giving up and
/// returning an empty (billed) scan.
const REAL_WAIT_LONG: Duration = Duration::from_millis(150);

#[derive(Clone)]
struct StoredObject {
    bytes: Arc<[u8]>,
    available_at: VirtualTime,
}

/// The object storage service.
pub struct ObjectStore {
    buckets: Mutex<HashMap<String, BTreeMap<String, StoredObject>>>,
    cond: Condvar,
    meter: Arc<ServiceMeter>,
    latency: LatencyModel,
    jitter: Arc<Jitter>,
    faults: Arc<FaultPlane>,
}

impl ObjectStore {
    pub(crate) fn new(
        meter: Arc<ServiceMeter>,
        latency: LatencyModel,
        jitter: Arc<Jitter>,
        faults: Arc<FaultPlane>,
    ) -> ObjectStore {
        ObjectStore {
            buckets: Mutex::new(HashMap::new()),
            cond: Condvar::new(),
            meter,
            latency,
            jitter,
            faults,
        }
    }

    /// Creates a bucket (idempotent). Buckets are pre-created offline in
    /// the paper's deployment, so this is not billed.
    pub fn create_bucket(&self, name: &str) {
        self.buckets.lock().entry(name.to_string()).or_default();
    }

    /// Removes a bucket and everything in it (idempotent) — the teardown
    /// twin of [`ObjectStore::create_bucket`]. Like creation, bucket
    /// lifecycle is an offline control-plane operation and is not billed.
    pub fn remove_bucket(&self, name: &str) {
        self.buckets.lock().remove(name);
        self.cond.notify_all();
    }

    /// Whether a bucket exists.
    pub fn bucket_exists(&self, name: &str) -> bool {
        self.buckets.lock().contains_key(name)
    }

    /// One `PUT`: stores `bytes` under `bucket/key`, visible at the
    /// caller's clock plus the PUT duration. Overwrites are allowed (S3
    /// semantics); billing is per request, independent of size.
    pub fn put(
        &self,
        bucket: &str,
        key: &str,
        bytes: impl Into<Arc<[u8]>>,
        clock: &mut VClock,
    ) -> Result<(), CommError> {
        let bytes = bytes.into();
        let dur = self.jitter.apply(self.latency.s3_put_total_us(bytes.len()));
        // Injected PUT failure: billed and the round trip elapses (AWS
        // bills failed requests), but nothing is stored.
        if let Some(kind) = self
            .faults
            .check(ApiClass::ObjectPut, clock.flow(), clock.now(), key)
        {
            self.meter.record_s3_put(clock.flow(), bytes.len() as u64);
            clock.advance_micros(dur);
            return Err(kind.to_error(format!("s3:put {bucket}/{key}")));
        }
        clock.advance_micros(dur);
        let mut buckets = self.buckets.lock();
        let b = buckets
            .get_mut(bucket)
            .ok_or_else(|| CommError::NoSuchBucket {
                bucket: bucket.to_string(),
            })?;
        self.meter.record_s3_put(clock.flow(), bytes.len() as u64);
        b.insert(
            key.to_string(),
            StoredObject {
                bytes,
                available_at: clock.now(),
            },
        );
        drop(buckets);
        self.cond.notify_all();
        Ok(())
    }

    /// Offline PUT: stores an object visible from time zero, without
    /// billing. Used for artifacts staged *before* a run (model blocks,
    /// partition maps) — the paper treats partitioning and staging as
    /// offline post-processing of the trained model.
    pub fn put_offline(
        &self,
        bucket: &str,
        key: &str,
        bytes: impl Into<Arc<[u8]>>,
    ) -> Result<(), CommError> {
        let bytes = bytes.into();
        let mut buckets = self.buckets.lock();
        let b = buckets
            .get_mut(bucket)
            .ok_or_else(|| CommError::NoSuchBucket {
                bucket: bucket.to_string(),
            })?;
        b.insert(
            key.to_string(),
            StoredObject {
                bytes,
                available_at: VirtualTime::ZERO,
            },
        );
        drop(buckets);
        self.cond.notify_all();
        Ok(())
    }

    /// One `GET`: returns the object body if it exists and is visible at
    /// the caller's clock. Billed even when it fails (as on AWS).
    pub fn get(&self, bucket: &str, key: &str, clock: &mut VClock) -> Result<Arc<[u8]>, CommError> {
        // Injected GET failure: billed as an unproductive request, the
        // first-byte round trip elapses, no body moves.
        if let Some(kind) = self
            .faults
            .check(ApiClass::ObjectGet, clock.flow(), clock.now(), key)
        {
            self.meter.record_s3_get(clock.flow(), 0);
            clock.advance_micros(self.jitter.apply(self.latency.s3_get_us));
            return Err(kind.to_error(format!("s3:get {bucket}/{key}")));
        }
        let buckets = self.buckets.lock();
        let b = buckets.get(bucket).ok_or_else(|| CommError::NoSuchBucket {
            bucket: bucket.to_string(),
        })?;
        let found = b
            .get(key)
            .filter(|o| o.available_at <= clock.now())
            .cloned();
        drop(buckets);
        match found {
            Some(obj) => {
                self.meter
                    .record_s3_get(clock.flow(), obj.bytes.len() as u64);
                clock.advance_micros(
                    self.jitter
                        .apply(self.latency.s3_get_total_us(obj.bytes.len())),
                );
                Ok(obj.bytes)
            }
            None => {
                self.meter.record_s3_get(clock.flow(), 0);
                clock.advance_micros(self.jitter.apply(self.latency.s3_get_us));
                Err(CommError::NoSuchKey {
                    key: format!("{bucket}/{key}"),
                })
            }
        }
    }

    /// One `LIST`: keys under `prefix` visible at the caller's clock (after
    /// the LIST round trip). If nothing is visible, blocks briefly in real
    /// time for producers before re-checking, then returns (possibly empty).
    pub fn list(
        &self,
        bucket: &str,
        prefix: &str,
        clock: &mut VClock,
    ) -> Result<Vec<String>, CommError> {
        self.meter.record_s3_list(clock.flow());
        clock.advance_micros(self.jitter.apply(self.latency.s3_list_us));
        let mut buckets = self.buckets.lock();
        if !buckets.contains_key(bucket) {
            return Err(CommError::NoSuchBucket {
                bucket: bucket.to_string(),
            });
        }
        let collect = |buckets: &HashMap<String, BTreeMap<String, StoredObject>>| {
            buckets[bucket]
                .range(prefix.to_string()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .filter(|(_, o)| o.available_at <= clock.now())
                .map(|(k, _)| k.clone())
                .collect::<Vec<String>>()
        };
        let mut keys = collect(&buckets);
        if keys.is_empty() {
            self.cond.wait_for(&mut buckets, REAL_WAIT);
            keys = collect(&buckets);
        }
        Ok(keys)
    }

    /// The FSI scan primitive: LIST with continuous-rescan billing.
    ///
    /// FSD-Inf-Object workers scan their prefix in a tight multi-threaded
    /// loop until **new** files appear. Objects persist after being
    /// processed, so the caller passes `known` — how many keys under the
    /// prefix it has already handled; a listing is only *productive* when
    /// more keys than that exist. Unproductive scans block briefly in real
    /// time (letting producer threads run) and bill a single LIST.
    ///
    /// When the earliest unseen object is stamped `gap` ahead of the
    /// caller's clock, the continuous scan loop it models is billed as
    /// `ceil(gap / scan_interval)` LIST requests and the clock advances to
    /// the stamp (`scan_interval` defaults to the LIST round trip —
    /// back-to-back scanning).
    ///
    /// Returns `(visible keys, billed LISTs)`.
    pub fn list_wait(
        &self,
        bucket: &str,
        prefix: &str,
        clock: &mut VClock,
        scan_interval_us: Option<u64>,
        known: usize,
    ) -> Result<(Vec<String>, u64), CommError> {
        let interval = scan_interval_us.unwrap_or(self.latency.s3_list_us).max(1);
        let mut buckets = self.buckets.lock();
        if !buckets.contains_key(bucket) {
            return Err(CommError::NoSuchBucket {
                bucket: bucket.to_string(),
            });
        }
        let matches = |buckets: &HashMap<String, BTreeMap<String, StoredObject>>| {
            buckets[bucket]
                .range(prefix.to_string()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, o)| (k.clone(), o.available_at))
                .collect::<Vec<(String, VirtualTime)>>()
        };
        let mut found = matches(&buckets);
        if found.len() <= known {
            // Nothing new yet: real-time grace for producers (notified on
            // every PUT), then re-check.
            let deadline = std::time::Instant::now() + REAL_WAIT_LONG;
            while found.len() <= known {
                let timeout = deadline.saturating_duration_since(std::time::Instant::now());
                if timeout.is_zero() {
                    break;
                }
                self.cond.wait_for(&mut buckets, timeout);
                found = matches(&buckets);
            }
        }
        drop(buckets);
        let now = clock.now();
        let visible = |found: &[(String, VirtualTime)], now: VirtualTime| {
            found
                .iter()
                .filter(|(_, t)| *t <= now)
                .map(|(k, _)| k.clone())
                .collect::<Vec<_>>()
        };
        if found.len() <= known {
            // Still nothing new: one empty-ish scan, caller loops.
            self.meter.record_s3_list(clock.flow());
            clock.advance_micros(self.jitter.apply(self.latency.s3_list_us));
            return Ok((visible(&found, clock.now()), 1));
        }
        let vis_now = found.iter().filter(|(_, t)| *t <= now).count();
        let scans = if vis_now > known {
            // New keys are already visible: a single productive scan.
            1
        } else {
            // New keys exist but are stamped in the virtual future: model
            // the continuous re-scan loop until the earliest one lands.
            let earliest = found
                .iter()
                .filter(|(_, t)| *t > now)
                .map(|(_, t)| *t)
                .min()
                .expect("future key exists");
            let gap = earliest.as_micros().saturating_sub(now.as_micros());
            clock.observe(earliest);
            1 + gap / interval
        };
        for _ in 0..scans {
            self.meter.record_s3_list(clock.flow());
        }
        clock.advance_micros(self.jitter.apply(self.latency.s3_list_us));
        Ok((visible(&found, clock.now()), scans))
    }

    /// Raw scan for the deterministic channel receive path: blocks briefly
    /// in *real* time while no more than `known` keys match, then returns
    /// every matching `(key, availability stamp)` — **no billing, no clock
    /// movement, no visibility filter**. The caller later reconstructs the
    /// billed continuous-rescan sequence from the stamps with
    /// [`ObjectStore::settle_scans`], decoupling billing and timing from
    /// real-thread scheduling.
    pub fn scan_keys(
        &self,
        bucket: &str,
        prefix: &str,
        known: usize,
    ) -> Result<Vec<(String, VirtualTime)>, CommError> {
        let mut buckets = self.buckets.lock();
        if !buckets.contains_key(bucket) {
            return Err(CommError::NoSuchBucket {
                bucket: bucket.to_string(),
            });
        }
        let matches = |buckets: &HashMap<String, BTreeMap<String, StoredObject>>| {
            buckets[bucket]
                .range(prefix.to_string()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, o)| (k.clone(), o.available_at))
                .collect::<Vec<(String, VirtualTime)>>()
        };
        let mut found = matches(&buckets);
        if found.len() <= known {
            let deadline = std::time::Instant::now() + REAL_WAIT_LONG;
            while found.len() <= known {
                let timeout = deadline.saturating_duration_since(std::time::Instant::now());
                if timeout.is_zero() {
                    break;
                }
                self.cond.wait_for(&mut buckets, timeout);
                found = matches(&buckets);
            }
        }
        Ok(found)
    }

    /// Bills one unproductive LIST (the liveness escape hatch of the
    /// deterministic receive path when a producer has really not shown up
    /// within the real-time grace).
    pub fn empty_scan(&self, clock: &mut VClock) {
        self.meter.record_s3_list(clock.flow());
        clock.advance_micros(self.jitter.apply(self.latency.s3_list_us));
    }

    /// Reconstructs — deterministically, from virtual stamps alone — the
    /// continuous-rescan LIST sequence a consumer starting at `clock`
    /// would have issued until every object with the given availability
    /// stamps had surfaced: objects already visible cost one productive
    /// scan, objects stamped in the virtual future cost
    /// `ceil(gap / scan_interval)` rescans (back-to-back scanning at the
    /// LIST round trip by default) before the productive one. Bills every
    /// scan and advances the clock through the sequence; returns the
    /// number of billed LISTs.
    pub fn settle_scans(
        &self,
        clock: &mut VClock,
        scan_interval_us: Option<u64>,
        stamps: &[VirtualTime],
    ) -> u64 {
        let interval = scan_interval_us.unwrap_or(self.latency.s3_list_us).max(1);
        let mut stamps: Vec<VirtualTime> = stamps.to_vec();
        stamps.sort_unstable();
        let mut scans = 0u64;
        let mut i = 0usize;
        while i < stamps.len() {
            let next = stamps[i];
            if next > clock.now() {
                // Model the rescan loop spinning until the next object
                // lands.
                let gap = next.as_micros() - clock.now().as_micros();
                let waiting = gap / interval;
                for _ in 0..waiting {
                    self.meter.record_s3_list(clock.flow());
                }
                scans += waiting;
                clock.observe(next);
            }
            // The productive scan surfaces everything visible at this
            // instant.
            while i < stamps.len() && stamps[i] <= clock.now() {
                i += 1;
            }
            self.meter.record_s3_list(clock.flow());
            scans += 1;
            clock.advance_micros(self.jitter.apply(self.latency.s3_list_us));
        }
        if scans == 0 {
            // Nothing to wait for still costs the scan that proved it.
            self.meter.record_s3_list(clock.flow());
            scans = 1;
            clock.advance_micros(self.jitter.apply(self.latency.s3_list_us));
        }
        scans
    }

    /// Deletes every object under `prefix` (inter-run cleanup; modeled as
    /// lifecycle expiry, not billed).
    ///
    /// Deletes are free and idempotent in this model, so an injected
    /// fault here is *counted* (observability for chaos runs) but the
    /// modeled lifecycle retry always succeeds — a delete that silently
    /// failed would leak residue with no billed call left to retry.
    pub fn delete_prefix(&self, bucket: &str, prefix: &str) {
        let _ = self
            .faults
            .check(ApiClass::ObjectDelete, 0, VirtualTime::ZERO, prefix);
        if let Some(b) = self.buckets.lock().get_mut(bucket) {
            b.retain(|k, _| !k.starts_with(prefix));
        }
    }

    /// Total object count in a bucket (diagnostics/tests).
    pub fn object_count(&self, bucket: &str) -> usize {
        self.buckets.lock().get(bucket).map_or(0, |b| b.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ObjectStore {
        ObjectStore::new(
            Arc::new(ServiceMeter::new()),
            LatencyModel::deterministic(),
            Arc::new(Jitter::new(5, 0.0)),
            Arc::new(FaultPlane::disabled()),
        )
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store();
        s.create_bucket("b0");
        let mut clock = VClock::default();
        s.put("b0", "1/2/3_4.dat", &b"payload"[..], &mut clock)
            .expect("put");
        let got = s.get("b0", "1/2/3_4.dat", &mut clock).expect("get");
        assert_eq!(&got[..], b"payload");
    }

    #[test]
    fn get_missing_key_fails_but_is_billed() {
        let s = store();
        s.create_bucket("b0");
        let mut clock = VClock::default();
        assert!(matches!(
            s.get("b0", "nope", &mut clock),
            Err(CommError::NoSuchKey { .. })
        ));
        assert_eq!(s.meter.snapshot().s3_get_requests, 1);
    }

    #[test]
    fn missing_bucket_fails() {
        let s = store();
        let mut clock = VClock::default();
        assert!(matches!(
            s.put("ghost", "k", &b"x"[..], &mut clock),
            Err(CommError::NoSuchBucket { .. })
        ));
        assert!(matches!(
            s.list("ghost", "", &mut clock),
            Err(CommError::NoSuchBucket { .. })
        ));
    }

    #[test]
    fn list_filters_by_prefix() {
        let s = store();
        s.create_bucket("b");
        let mut clock = VClock::default();
        s.put("b", "1/5/0_5.dat", &b"x"[..], &mut clock)
            .expect("put");
        s.put("b", "1/5/2_5.nul", &[][..], &mut clock).expect("put");
        s.put("b", "1/6/0_6.dat", &b"x"[..], &mut clock)
            .expect("put");
        s.put("b", "2/5/0_5.dat", &b"x"[..], &mut clock)
            .expect("put");
        let mut reader = VClock::starting_at(VirtualTime::from_secs_f64(100.0));
        let keys = s.list("b", "1/5/", &mut reader).expect("list");
        assert_eq!(
            keys,
            vec!["1/5/0_5.dat".to_string(), "1/5/2_5.nul".to_string()]
        );
    }

    #[test]
    fn objects_invisible_before_available_at() {
        let s = store();
        s.create_bucket("b");
        // Writer with a fast-forwarded clock writes "in the future".
        let mut writer = VClock::starting_at(VirtualTime::from_secs_f64(50.0));
        s.put("b", "k.dat", &b"x"[..], &mut writer).expect("put");
        // Reader still at t=0 cannot see or read it...
        let mut reader = VClock::default();
        assert!(s.list("b", "", &mut reader).expect("list").is_empty());
        assert!(s.get("b", "k.dat", &mut reader).is_err());
        // ...until its clock passes the availability stamp.
        let mut late = VClock::starting_at(VirtualTime::from_secs_f64(60.0));
        assert_eq!(s.list("b", "", &mut late).expect("list").len(), 1);
        assert!(s.get("b", "k.dat", &mut late).is_ok());
    }

    #[test]
    fn put_duration_scales_with_size() {
        let s = store();
        s.create_bucket("b");
        let mut small = VClock::default();
        s.put("b", "s", &b"x"[..], &mut small).expect("put");
        let mut large = VClock::default();
        s.put("b", "l", &vec![0u8; 50_000_000][..], &mut large)
            .expect("put");
        assert!(
            large.now() > small.now().plus_micros(100_000),
            "bandwidth not modeled"
        );
    }

    #[test]
    fn overwrite_replaces_body() {
        let s = store();
        s.create_bucket("b");
        let mut clock = VClock::default();
        s.put("b", "k", &b"v1"[..], &mut clock).expect("put");
        s.put("b", "k", &b"v2"[..], &mut clock).expect("put");
        assert_eq!(&s.get("b", "k", &mut clock).expect("get")[..], b"v2");
        assert_eq!(s.object_count("b"), 1);
    }

    #[test]
    fn delete_prefix_cleans_up() {
        let s = store();
        s.create_bucket("b");
        let mut clock = VClock::default();
        s.put("b", "1/x", &b"a"[..], &mut clock).expect("put");
        s.put("b", "1/y", &b"b"[..], &mut clock).expect("put");
        s.put("b", "2/z", &b"c"[..], &mut clock).expect("put");
        s.delete_prefix("b", "1/");
        assert_eq!(s.object_count("b"), 1);
    }

    #[test]
    fn meters_count_every_call() {
        let s = store();
        s.create_bucket("b");
        let mut clock = VClock::default();
        s.put("b", "k", &b"abc"[..], &mut clock).expect("put");
        s.get("b", "k", &mut clock).expect("get");
        s.list("b", "", &mut clock).expect("list");
        let snap = s.meter.snapshot();
        assert_eq!(snap.s3_put_requests, 1);
        assert_eq!(snap.s3_put_bytes, 3);
        assert_eq!(snap.s3_get_requests, 1);
        assert_eq!(snap.s3_get_bytes, 3);
        assert_eq!(snap.s3_list_requests, 1);
    }

    #[test]
    fn list_wait_bills_scan_rounds_for_future_objects() {
        let s = store();
        s.create_bucket("b");
        let mut writer = VClock::starting_at(VirtualTime::from_secs_f64(1.0));
        s.put("b", "5/3/1_3.dat", &b"x"[..], &mut writer)
            .expect("put");
        let stamp = writer.now();
        let before = s.meter.snapshot().s3_list_requests;
        // Reader 1s of virtual time behind; scan interval 100ms → ~10 scans.
        let mut reader = VClock::starting_at(
            stamp
                .as_micros()
                .checked_sub(1_000_000)
                .map(VirtualTime)
                .unwrap(),
        );
        let (keys, billed) = s
            .list_wait("b", "5/3/", &mut reader, Some(100_000), 0)
            .expect("list");
        assert_eq!(keys.len(), 1);
        assert!(billed >= 10);
        let scans = s.meter.snapshot().s3_list_requests - before;
        assert!(
            (10..=11).contains(&scans),
            "expected ~10 scans, billed {scans}"
        );
        assert!(reader.now() >= stamp);
    }

    #[test]
    fn list_wait_single_scan_when_ready() {
        let s = store();
        s.create_bucket("b");
        let mut writer = VClock::default();
        s.put("b", "k.dat", &b"x"[..], &mut writer).expect("put");
        let before = s.meter.snapshot().s3_list_requests;
        let mut reader = VClock::starting_at(VirtualTime::from_secs_f64(10.0));
        let (keys, billed) = s.list_wait("b", "", &mut reader, None, 0).expect("list");
        assert_eq!(keys.len(), 1);
        assert_eq!(billed, 1);
        assert_eq!(s.meter.snapshot().s3_list_requests - before, 1);
    }

    #[test]
    fn list_wait_empty_when_nothing_arrives() {
        let s = store();
        s.create_bucket("b");
        let mut reader = VClock::default();
        let (keys, billed) = s
            .list_wait("b", "none/", &mut reader, None, 0)
            .expect("list");
        assert!(keys.is_empty());
        assert_eq!(billed, 1);
        assert_eq!(s.meter.snapshot().s3_list_requests, 1);
    }

    #[test]
    fn concurrent_writers_and_reader() {
        let s = Arc::new(store());
        s.create_bucket("b");
        let mut writers = Vec::new();
        for w in 0..4 {
            let s = s.clone();
            writers.push(std::thread::spawn(move || {
                let mut clock = VClock::default();
                for i in 0..25 {
                    s.put("b", &format!("w{w}/{i}.dat"), &b"data"[..], &mut clock)
                        .expect("put");
                }
            }));
        }
        for h in writers {
            h.join().expect("writer");
        }
        let mut reader = VClock::starting_at(VirtualTime::from_secs_f64(1e6));
        let keys = s.list("b", "", &mut reader).expect("list");
        assert_eq!(keys.len(), 100);
    }
}
