//! Seeded arrival traces for scheduler load testing.
//!
//! A trace is a list of [`Arrival`]s in virtual-time order. Generation is
//! fully deterministic per seed (the offline `rand` shim's xoshiro256++),
//! so the same seed replays the same workload in tests, benchmarks and
//! bug reports.

use crate::scheduler::Priority;
use fsd_comm::VirtualTime;
use fsd_core::Variant;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request arrival in a load trace. The inputs themselves are not
/// materialized here — `width`/`input_seed` describe how the driver
/// generates them against the model under test, which keeps traces
/// model-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time (traces are sorted by this).
    pub at: VirtualTime,
    /// Priority class the client requests.
    pub priority: Priority,
    /// Requested execution variant.
    pub variant: Variant,
    /// Requested worker parallelism `P`.
    pub workers: u32,
    /// Per-worker memory (MB).
    pub memory_mb: u32,
    /// Input batch width (samples).
    pub width: usize,
    /// Seed for deterministic input generation.
    pub input_seed: u64,
}

fn arrival(
    rng: &mut StdRng,
    at_us: u64,
    priority: Priority,
    variant: Variant,
    workers: u32,
    idx: usize,
) -> Arrival {
    Arrival {
        at: VirtualTime::from_micros(at_us),
        priority,
        variant,
        workers,
        memory_mb: 1769,
        width: rng.gen_range(4usize..10),
        input_seed: rng.gen_range(1u64..1 << 48) ^ idx as u64,
    }
}

/// A steady trickle: `n` arrivals spaced `gap_us` apart, mostly
/// interactive with every fourth request batch, small worker counts.
/// Under any sane capacity this trace sees no backpressure.
pub fn steady(n: usize, gap_us: u64, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let priority = if i % 4 == 3 {
                Priority::Batch
            } else {
                Priority::Interactive
            };
            let variant = if i % 3 == 0 {
                Variant::Serial
            } else {
                Variant::Queue
            };
            let workers = 1 + (i % 2) as u32;
            arrival(&mut rng, i as u64 * gap_us, priority, variant, workers, i)
        })
        .collect()
}

/// Bursts of simultaneous arrivals: `bursts` groups of `burst_size`
/// requests, each group sharing one arrival instant, groups `gap_us`
/// apart. Each burst mixes both classes and both channel variants.
pub fn bursty(bursts: usize, burst_size: usize, gap_us: u64, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(bursts * burst_size);
    for b in 0..bursts {
        for j in 0..burst_size {
            let i = b * burst_size + j;
            let priority = if j % 3 == 2 {
                Priority::Batch
            } else {
                Priority::Interactive
            };
            let variant = match j % 3 {
                0 => Variant::Queue,
                1 => Variant::Object,
                _ => Variant::Serial,
            };
            let workers = 1 + (j % 2) as u32;
            out.push(arrival(
                &mut rng,
                b as u64 * gap_us,
                priority,
                variant,
                workers,
                i,
            ));
        }
    }
    out
}

/// One arrival in a multi-model *fleet* trace: which registered model the
/// request targets, plus the arrival itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetArrival {
    /// Index into the fleet replay's model list
    /// ([`crate::harness::replay_fleet`]).
    pub model: usize,
    /// The request arrival.
    pub arrival: Arrival,
}

/// The fleet-scale workload: `rounds` rounds, each sending one burst of
/// `burst` simultaneous requests to *every* one of `models` models, rounds
/// `gap_us` apart. A burst shares one arrival instant, one variant and one
/// worker count (shapes alternate per `(model, round)`), so continuous
/// batching can coalesce its Batch body; on even rounds each burst leads
/// with an Interactive head, exercising the never-spans-classes rule under
/// coalescing pressure. Scaling `models × rounds × burst` is the 10–100×
/// fleet axis of the `scheduler_throughput` bench.
pub fn fleet(
    models: usize,
    rounds: usize,
    burst: usize,
    gap_us: u64,
    seed: u64,
) -> Vec<FleetArrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(models * rounds * burst);
    let mut idx = 0usize;
    for round in 0..rounds {
        for model in 0..models {
            let variant = if (model + round) % 2 == 0 {
                Variant::Queue
            } else {
                Variant::Object
            };
            let workers = 1 + ((model + round) % 2) as u32;
            for j in 0..burst {
                let priority = if j == 0 && round % 2 == 0 {
                    Priority::Interactive
                } else {
                    Priority::Batch
                };
                out.push(FleetArrival {
                    model,
                    arrival: arrival(
                        &mut rng,
                        round as u64 * gap_us,
                        priority,
                        variant,
                        workers,
                        idx,
                    ),
                });
                idx += 1;
            }
        }
    }
    out
}

/// The adversarial case: `n` large-`P` requests all arriving at once
/// (virtual time zero), batch-heavy, cycling through every channel
/// transport (queue, object, hybrid, direct) — the flood that must trip the
/// bounded queues into explicit backpressure instead of buffering without
/// bound or starving interactive traffic.
pub fn flood(n: usize, workers: u32, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let priority = if i % 3 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            };
            let variant = match i % 4 {
                0 => Variant::Queue,
                1 => Variant::Object,
                2 => Variant::Hybrid,
                _ => Variant::Direct,
            };
            arrival(&mut rng, 0, priority, variant, workers, i)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        assert_eq!(steady(20, 1000, 7), steady(20, 1000, 7));
        assert_eq!(bursty(3, 8, 50_000, 7), bursty(3, 8, 50_000, 7));
        assert_eq!(flood(16, 4, 7), flood(16, 4, 7));
        assert_eq!(fleet(4, 5, 6, 100_000, 7), fleet(4, 5, 6, 100_000, 7));
        assert_ne!(steady(20, 1000, 7), steady(20, 1000, 8));
        assert_ne!(fleet(4, 5, 6, 100_000, 7), fleet(4, 5, 6, 100_000, 8));
    }

    #[test]
    fn fleet_traces_are_coalescible_per_burst_and_fair_to_interactive() {
        let models = 3;
        let burst = 5;
        let t = fleet(models, 4, burst, 100_000, 9);
        assert_eq!(t.len(), models * 4 * burst);
        assert!(
            t.windows(2).all(|w| w[0].arrival.at <= w[1].arrival.at),
            "sorted by time"
        );
        assert!(t.iter().all(|a| a.model < models));
        for chunk in t.chunks(burst) {
            // A burst shares model, instant and coalescing shape...
            assert!(chunk.iter().all(|a| a.model == chunk[0].model));
            assert!(chunk.iter().all(|a| a.arrival.at == chunk[0].arrival.at));
            assert!(chunk
                .iter()
                .all(|a| a.arrival.variant == chunk[0].arrival.variant));
            assert!(chunk
                .iter()
                .all(|a| a.arrival.workers == chunk[0].arrival.workers));
            // ...but never mixes an Interactive head into its Batch body.
            assert!(chunk[1..]
                .iter()
                .all(|a| a.arrival.priority == Priority::Batch));
        }
        assert!(t
            .iter()
            .any(|a| a.arrival.priority == Priority::Interactive));
        for v in [Variant::Queue, Variant::Object] {
            assert!(t.iter().any(|a| a.arrival.variant == v));
        }
    }

    #[test]
    fn traces_are_time_ordered_and_mixed() {
        let t = bursty(4, 6, 10_000, 3);
        assert!(t.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
        assert!(t.iter().any(|a| a.priority == Priority::Batch));
        assert!(t.iter().any(|a| a.priority == Priority::Interactive));
        assert!(t.iter().any(|a| a.variant == Variant::Object));
        let f = flood(10, 4, 3);
        assert!(f.iter().all(|a| a.at == VirtualTime::ZERO));
        assert!(f.iter().all(|a| a.workers == 4));
        for v in [
            Variant::Queue,
            Variant::Object,
            Variant::Hybrid,
            Variant::Direct,
        ] {
            assert!(
                f.iter().any(|a| a.variant == v),
                "flood must cycle through {v}"
            );
        }
    }
}
