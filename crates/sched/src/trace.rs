//! Seeded arrival traces for scheduler load testing.
//!
//! A trace is a list of [`Arrival`]s in virtual-time order. Generation is
//! fully deterministic per seed (the offline `rand` shim's xoshiro256++),
//! so the same seed replays the same workload in tests, benchmarks and
//! bug reports.

use crate::scheduler::Priority;
use fsd_comm::VirtualTime;
use fsd_core::Variant;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request arrival in a load trace. The inputs themselves are not
/// materialized here — `width`/`input_seed` describe how the driver
/// generates them against the model under test, which keeps traces
/// model-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time (traces are sorted by this).
    pub at: VirtualTime,
    /// Priority class the client requests.
    pub priority: Priority,
    /// Requested execution variant.
    pub variant: Variant,
    /// Requested worker parallelism `P`.
    pub workers: u32,
    /// Per-worker memory (MB).
    pub memory_mb: u32,
    /// Input batch width (samples).
    pub width: usize,
    /// Seed for deterministic input generation.
    pub input_seed: u64,
}

fn arrival(
    rng: &mut StdRng,
    at_us: u64,
    priority: Priority,
    variant: Variant,
    workers: u32,
    idx: usize,
) -> Arrival {
    Arrival {
        at: VirtualTime::from_micros(at_us),
        priority,
        variant,
        workers,
        memory_mb: 1769,
        width: rng.gen_range(4usize..10),
        input_seed: rng.gen_range(1u64..1 << 48) ^ idx as u64,
    }
}

/// A steady trickle: `n` arrivals spaced `gap_us` apart, mostly
/// interactive with every fourth request batch, small worker counts.
/// Under any sane capacity this trace sees no backpressure.
pub fn steady(n: usize, gap_us: u64, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let priority = if i % 4 == 3 {
                Priority::Batch
            } else {
                Priority::Interactive
            };
            let variant = if i % 3 == 0 {
                Variant::Serial
            } else {
                Variant::Queue
            };
            let workers = 1 + (i % 2) as u32;
            arrival(&mut rng, i as u64 * gap_us, priority, variant, workers, i)
        })
        .collect()
}

/// Bursts of simultaneous arrivals: `bursts` groups of `burst_size`
/// requests, each group sharing one arrival instant, groups `gap_us`
/// apart. Each burst mixes both classes and both channel variants.
pub fn bursty(bursts: usize, burst_size: usize, gap_us: u64, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(bursts * burst_size);
    for b in 0..bursts {
        for j in 0..burst_size {
            let i = b * burst_size + j;
            let priority = if j % 3 == 2 {
                Priority::Batch
            } else {
                Priority::Interactive
            };
            let variant = match j % 3 {
                0 => Variant::Queue,
                1 => Variant::Object,
                _ => Variant::Serial,
            };
            let workers = 1 + (j % 2) as u32;
            out.push(arrival(
                &mut rng,
                b as u64 * gap_us,
                priority,
                variant,
                workers,
                i,
            ));
        }
    }
    out
}

/// The adversarial case: `n` large-`P` requests all arriving at once
/// (virtual time zero), batch-heavy, cycling through every channel
/// transport (queue, object, hybrid) — the flood that must trip the
/// bounded queues into explicit backpressure instead of buffering without
/// bound or starving interactive traffic.
pub fn flood(n: usize, workers: u32, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let priority = if i % 3 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            };
            let variant = match i % 3 {
                0 => Variant::Queue,
                1 => Variant::Object,
                _ => Variant::Hybrid,
            };
            arrival(&mut rng, 0, priority, variant, workers, i)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        assert_eq!(steady(20, 1000, 7), steady(20, 1000, 7));
        assert_eq!(bursty(3, 8, 50_000, 7), bursty(3, 8, 50_000, 7));
        assert_eq!(flood(16, 4, 7), flood(16, 4, 7));
        assert_ne!(steady(20, 1000, 7), steady(20, 1000, 8));
    }

    #[test]
    fn traces_are_time_ordered_and_mixed() {
        let t = bursty(4, 6, 10_000, 3);
        assert!(t.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
        assert!(t.iter().any(|a| a.priority == Priority::Batch));
        assert!(t.iter().any(|a| a.priority == Priority::Interactive));
        assert!(t.iter().any(|a| a.variant == Variant::Object));
        let f = flood(10, 4, 3);
        assert!(f.iter().all(|a| a.at == VirtualTime::ZERO));
        assert!(f.iter().all(|a| a.workers == 4));
        for v in [Variant::Queue, Variant::Object, Variant::Hybrid] {
            assert!(
                f.iter().any(|a| a.variant == v),
                "flood must cycle through {v}"
            );
        }
    }
}
