//! The admission-controlled scheduler.
//!
//! All intake goes through [`Scheduler::enqueue`], which either accepts a
//! request into a **bounded** per-class queue (returning a [`Ticket`]) or
//! rejects it with [`FsdError::Overloaded`]. Admission moves requests from
//! the queues into execution under two caps — global in-flight and
//! per-model in-flight — choosing between backlogged priority classes by
//! smooth weighted round-robin (strict FIFO within a class, head-of-line
//! per class so the admission order is a pure function of the enqueue
//! sequence).
//!
//! Two dispatch modes share every code path except *when* admission runs:
//!
//! * **auto** (production): admission runs inside `enqueue` and at each
//!   request completion; completions release their concurrency slot
//!   immediately.
//! * **manual** (deterministic harnesses): admission runs only inside
//!   explicit [`Scheduler::dispatch`] calls, and a slot is released when
//!   the ticket's result is harvested by [`Ticket::wait`]. With a single
//!   driver thread every scheduler-state mutation is then totally ordered
//!   by that thread, so the admission sequence is reproducible bit for bit
//!   while execution still spreads over real worker threads.

use crate::predictor::{Predictor, PredictorConfig, PrewarmDecision};
use fsd_comm::{quota, VirtualTime};
use fsd_core::{
    BatchedRequest, FsdError, FsdService, InferenceReport, LaunchPath, TreeKey, Variant,
};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Request priority classes, drained by weighted FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic (the default weight favors this class).
    Interactive,
    /// Throughput traffic that tolerates queueing but must not starve.
    Batch,
}

impl Priority {
    /// Number of priority classes.
    pub const COUNT: usize = 2;
    /// Every class, in selection-tiebreak order.
    pub const ALL: [Priority; Priority::COUNT] = [Priority::Interactive, Priority::Batch];

    /// Dense index for per-class arrays.
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::Interactive => write!(f, "interactive"),
            Priority::Batch => write!(f, "batch"),
        }
    }
}

/// Largest per-model cap [`derive_model_cap`] will produce; also the cap
/// for Serial-recommended models, whose concurrency is compute-bound and
/// governed by the global cap.
const MAX_DERIVED_CAP: usize = 32;

/// Relative half-width of the seeded jitter applied to `retry_after`
/// hints, decorrelating retry herds: every rejected client of one
/// overload burst would otherwise be told the *same* instant to return.
const RETRY_HINT_JITTER: f64 = 0.1;

/// Why an admitted request failed — the scheduler's coarse classification
/// of [`FsdError`] for its counters and retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureCause {
    /// A communication-layer failure (transport fault, quota, codec).
    /// Retryable: the next attempt draws fresh fault decisions.
    Comm,
    /// A worker instance (or its whole tree) crashed mid-request.
    /// Retryable: the relaunch lands on fresh instances.
    InstanceCrash,
    /// A worker exceeded its runtime limit. **Not** retryable — the rerun
    /// would compute the same too-long answer and burn the bill twice.
    Timeout,
    /// Everything else (OOM, config errors, empty requests). Not
    /// retryable: deterministic failures of the request itself.
    Other,
}

impl FailureCause {
    /// Number of causes (dense-array sizing).
    pub const COUNT: usize = 4;

    /// Classifies a request error. Instance deaths travel as
    /// [`FsdError::Comm`] with the platform's launch/abort/tree op tags,
    /// so they are split out *before* the generic comm bucket.
    pub fn of(err: &FsdError) -> FailureCause {
        match err {
            FsdError::Comm(f) if matches!(f.op, "instance" | "abort" | "tree") => {
                FailureCause::InstanceCrash
            }
            FsdError::Comm(_) => FailureCause::Comm,
            FsdError::Timeout { .. } => FailureCause::Timeout,
            _ => FailureCause::Other,
        }
    }

    /// Dense index for per-cause arrays.
    pub fn index(self) -> usize {
        match self {
            FailureCause::Comm => 0,
            FailureCause::InstanceCrash => 1,
            FailureCause::Timeout => 2,
            FailureCause::Other => 3,
        }
    }

    /// Whether a failed attempt of this cause is worth re-admitting: comm
    /// faults and instance crashes are environmental and transient;
    /// timeouts and compute-side errors are properties of the request.
    pub fn is_retryable(self) -> bool {
        matches!(self, FailureCause::Comm | FailureCause::InstanceCrash)
    }
}

/// Fallback service-latency estimate for `retry_after` before the first
/// completion has seeded the EWMA (1 virtual second).
const DEFAULT_LATENCY_US: f64 = 1_000_000.0;

/// EWMA smoothing factor for observed request latency.
const EWMA_ALPHA: f64 = 0.2;

/// Derives a per-model concurrency cap from the §IV-C recommendation's
/// predicted channel load: each in-flight tree is predicted to push
/// `workers × bytes_per_pair_layer` through the shared communication
/// fabric per layer, and the region offers `n_topics` parallel channels of
/// a few publish quotas each (the same "a few quotas per pair" saturation
/// multiple the recommender uses). Models the recommender routes to
/// Serial use no channel; their concurrency is compute-bound and the
/// global cap governs. Routing runs through the service's own resolver
/// (`FsdService::recommend` with its a-priori
/// `FsdService::est_bytes_per_row`), so admission caps and execution can
/// never disagree on a model's variant.
pub fn derive_model_cap(service: &FsdService, typical_workers: u32) -> usize {
    let rec = service.recommend(typical_workers.max(1), service.est_bytes_per_row());
    match rec.variant {
        Variant::Serial => MAX_DERIVED_CAP,
        Variant::Queue | Variant::Object | Variant::Hybrid | Variant::Direct | Variant::Auto => {
            let per_tree = rec.profile.workers as usize * rec.profile.bytes_per_pair_layer.max(1);
            let budget = service.env().config().n_topics * quota::MAX_PUBLISH_BYTES * 4;
            (budget / per_tree).clamp(1, MAX_DERIVED_CAP)
        }
    }
}

/// Cross-request continuous-batching knobs
/// ([`SchedulerConfig::batched`]).
///
/// When set, admission coalesces compatible queued requests — same model,
/// same resolved `(variant, P, memory_mb)` shape via [`FsdService::resolve`]
/// — into **one** multi-batch tree pass ([`FsdService::submit_coalesced`]):
/// the coalition holds a single concurrency slot, its first member pays at
/// most one launch, and every other member lands warm on the resident
/// tree. Billing stays disjoint per member flow, and a batch **never spans
/// priority classes**; while Interactive traffic waits, a Batch head is
/// admitted alone (Interactive preempts the window close).
#[derive(Debug, Clone, Copy)]
pub struct BatchingConfig {
    /// Coalescing window in virtual time: a queued request joins the
    /// head's coalition only if their stamped arrival instants
    /// ([`Scheduler::enqueue_at`]) differ by at most this much. Windows
    /// are measured against trace-stamped virtual arrivals, so
    /// manual-dispatch replays coalesce bit-identically.
    pub window: VirtualTime,
    /// Maximum members per coalition (clamped to ≥ 1).
    pub max_batch: usize,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            window: VirtualTime::from_micros(250_000),
            max_batch: 8,
        }
    }
}

impl BatchingConfig {
    /// Sets the coalescing window (virtual time).
    pub fn window(mut self, window: VirtualTime) -> BatchingConfig {
        self.window = window;
        self
    }

    /// Sets the maximum coalition size (clamped to ≥ 1).
    pub fn max_batch(mut self, max_batch: usize) -> BatchingConfig {
        self.max_batch = max_batch.max(1);
        self
    }
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Maximum concurrently executing requests across all models.
    pub global_cap: usize,
    /// Bounded queue depth per priority class; a full queue rejects with
    /// [`FsdError::Overloaded`].
    pub queue_capacity: usize,
    /// Weighted-FIFO shares, indexed by [`Priority::index`]. Zero weights
    /// are clamped to 1 (a zero-weight class would starve).
    pub weights: [u32; Priority::COUNT],
    /// Worker count used to derive per-model caps a priori (§IV-C).
    pub typical_workers: u32,
    /// Manual dispatch: admission only happens in [`Scheduler::dispatch`]
    /// and slots release on harvest — the deterministic-harness mode.
    pub manual_dispatch: bool,
    /// Record the admission order (seq numbers) for harnesses/tests.
    pub record_admissions: bool,
    /// Predictive pre-warming: mine each model's arrival history
    /// ([`crate::predictor::Predictor`]) and pre-warm/evict its warm pool
    /// ahead of the traffic. Requires every registered model to have a
    /// warm pool.
    pub predictor: Option<PredictorConfig>,
    /// Cross-request continuous batching ([`BatchingConfig`]); `None`
    /// admits every request as its own tree pass.
    pub batching: Option<BatchingConfig>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            global_cap: 8,
            queue_capacity: 64,
            weights: [3, 1],
            typical_workers: 3,
            manual_dispatch: false,
            record_admissions: false,
            predictor: None,
            batching: None,
        }
    }
}

impl SchedulerConfig {
    /// Sets the global in-flight cap.
    pub fn global_cap(mut self, cap: usize) -> SchedulerConfig {
        self.global_cap = cap.max(1);
        self
    }

    /// Sets the per-class queue bound. Clamped to ≥ 1 (a zero-capacity
    /// queue would reject every request, even on an idle scheduler).
    pub fn queue_capacity(mut self, cap: usize) -> SchedulerConfig {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Sets the weighted-FIFO shares (Interactive, Batch).
    pub fn weights(mut self, interactive: u32, batch: u32) -> SchedulerConfig {
        self.weights = [interactive.max(1), batch.max(1)];
        self
    }

    /// Sets the worker count used for §IV-C cap derivation.
    pub fn typical_workers(mut self, p: u32) -> SchedulerConfig {
        self.typical_workers = p.max(1);
        self
    }

    /// Switches to manual dispatch with admission recording — the
    /// deterministic-harness mode.
    pub fn manual(mut self) -> SchedulerConfig {
        self.manual_dispatch = true;
        self.record_admissions = true;
        self
    }

    /// Enables predictive pre-warming: every accepted request feeds the
    /// model's [`Predictor`], whose decisions pre-warm matching trees
    /// *before* admission runs (and evict shapes whose traffic went
    /// quiet). [`Scheduler::dispatch`] — the drain tick — re-applies
    /// standing evictions so a draining system converges back to zero
    /// warm trees.
    pub fn predictive(mut self, predictor: PredictorConfig) -> SchedulerConfig {
        self.predictor = Some(predictor);
        self
    }

    /// Enables cross-request continuous batching: admission coalesces
    /// compatible queued requests (same model and resolved shape, arrivals
    /// within `batching.window`) into one multi-batch tree pass holding a
    /// single concurrency slot. See [`BatchingConfig`] for the fairness
    /// and billing rules.
    pub fn batched(mut self, batching: BatchingConfig) -> SchedulerConfig {
        self.batching = Some(batching);
        self
    }
}

/// Point-in-time scheduler statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedStatsSnapshot {
    /// Requests accepted into a queue.
    pub enqueued: u64,
    /// Requests admitted into execution, per class.
    pub admitted: [u64; Priority::COUNT],
    /// Requests rejected with backpressure, per class.
    pub rejected: [u64; Priority::COUNT],
    /// Requests that finished successfully.
    pub completed: u64,
    /// Requests that finished with an error (terminally — retried attempts
    /// count under `retried` until their budget runs out).
    pub failed: u64,
    /// Terminal failures by [`FailureCause`], indexed by
    /// [`FailureCause::index`].
    pub failed_by: [u64; FailureCause::COUNT],
    /// Failed attempts re-admitted under the request's retry budget
    /// ([`Scheduler::enqueue_with_retries`]); the re-admission is not
    /// re-counted under `enqueued` and never feeds the predictor.
    pub retried: u64,
    /// Completed requests served by a warm tree (the admission path found
    /// a matching parked tree in the service's warm pool).
    pub warm_hits: u64,
    /// Completed requests that paid the full launch bill (including all
    /// Serial runs and every request of a pool-less service).
    pub cold_starts: u64,
    /// Trees pre-warmed by predictor decisions.
    pub prewarmed: u64,
    /// Parked trees evicted by predictor quiescence decisions.
    pub predictor_evicted: u64,
    /// Queued requests cancelled by [`Scheduler::shutdown`] (their tickets
    /// resolve [`FsdError::ShuttingDown`](fsd_core::FsdError::ShuttingDown)).
    pub cancelled: u64,
    /// Multi-member coalitions admitted (continuous batching).
    pub coalitions: u64,
    /// Requests admitted as members of a multi-member coalition.
    pub coalesced: u64,
    /// Currently queued (accepted, not yet admitted).
    pub queued: usize,
    /// Currently holding a concurrency slot.
    pub inflight: usize,
    /// High-water mark of `inflight` (cap invariant checks).
    pub max_inflight: usize,
    /// Per-model high-water marks, in registration order.
    pub max_inflight_per_model: Vec<usize>,
    /// Smoothed observed request latency (virtual time), blended across
    /// launch paths by the observed warm/cold mix — what `retry_after`
    /// hints are computed from.
    pub ewma_latency: VirtualTime,
    /// Smoothed latency of cold-start completions only.
    pub ewma_cold_latency: VirtualTime,
    /// Smoothed latency of warm-hit completions only.
    pub ewma_warm_latency: VirtualTime,
}

impl SchedStatsSnapshot {
    /// Total admitted across classes.
    pub fn total_admitted(&self) -> u64 {
        self.admitted.iter().sum()
    }

    /// Total rejected across classes.
    pub fn total_rejected(&self) -> u64 {
        self.rejected.iter().sum()
    }
}

/// A registered model: the service plus its concurrency cap.
struct ModelEntry {
    name: String,
    service: Arc<FsdService>,
    cap: usize,
}

/// One accepted, not-yet-admitted request.
struct Pending {
    ticket: Arc<TicketShared>,
    req: BatchedRequest,
    /// Stamped virtual arrival instant ([`Scheduler::enqueue_at`]); the
    /// continuous-batching window is measured between these.
    arrival: VirtualTime,
    /// The resolved coalescing shape, written back (outside the scheduler
    /// lock) after acceptance: `Some(key)` may join a coalition of the
    /// same key; `None` (Serial-resolved, empty, or not yet resolved)
    /// always dispatches solo.
    shape: Option<TreeKey>,
    /// Remaining retry budget ([`Scheduler::enqueue_with_retries`]): a
    /// retryable failure with budget left re-enters its class queue at the
    /// head instead of resolving the ticket.
    retries_left: u32,
}

/// Result cell shared between the executor thread and the ticket holder.
struct TicketCell {
    result: Option<Result<InferenceReport, FsdError>>,
}

/// The concurrency slot an admitted execution pass holds, shared by every
/// coalition member's ticket: in manual mode the slot is released when the
/// **last** member is harvested, so a coalition of `k` tickets frees
/// exactly one global/model slot (not `k`).
struct SlotHold {
    remaining: AtomicUsize,
}

struct TicketShared {
    seq: u64,
    priority: Priority,
    model: usize,
    cell: Mutex<TicketCell>,
    done: Condvar,
    /// Set at admission; taken (once) at harvest. `None` for tickets that
    /// never got a slot — e.g. cancelled at shutdown while still queued.
    slot: Mutex<Option<Arc<SlotHold>>>,
}

/// Handle to an accepted request; [`Ticket::wait`] blocks for the result.
///
/// In manual-dispatch mode the request's concurrency slot is released when
/// the result is harvested here, so a driver that never waits its tickets
/// would pin slots forever — harnesses must harvest every ticket.
pub struct Ticket {
    shared: Arc<TicketShared>,
    core: Arc<SchedulerCore>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("seq", &self.shared.seq)
            .field("priority", &self.shared.priority)
            .field("done", &self.is_done())
            .finish()
    }
}

impl Ticket {
    /// The request's admission sequence number (global, monotonically
    /// increasing in enqueue-acceptance order).
    pub fn seq(&self) -> u64 {
        self.shared.seq
    }

    /// The request's priority class.
    pub fn priority(&self) -> Priority {
        self.shared.priority
    }

    /// Whether the result is ready (a `wait` would not block).
    pub fn is_done(&self) -> bool {
        self.shared.cell.lock().result.is_some()
    }

    /// Blocks until the request finishes and returns its result. Queued
    /// tickets cancelled by [`Scheduler::shutdown`] resolve promptly with
    /// [`FsdError::ShuttingDown`](fsd_core::FsdError::ShuttingDown)
    /// instead of hanging.
    pub fn wait(self) -> Result<InferenceReport, FsdError> {
        let result = {
            let mut cell = self.shared.cell.lock();
            loop {
                if let Some(r) = cell.result.take() {
                    break r;
                }
                self.shared
                    .done
                    .wait_for(&mut cell, Duration::from_millis(50));
            }
        };
        self.core.on_harvest(&self.shared);
        result
    }
}

#[derive(Default)]
struct Counters {
    enqueued: u64,
    admitted: [u64; Priority::COUNT],
    rejected: [u64; Priority::COUNT],
    completed: u64,
    failed: u64,
    failed_by: [u64; FailureCause::COUNT],
    retried: u64,
    warm_hits: u64,
    cold_starts: u64,
    prewarmed: u64,
    predictor_evicted: u64,
    cancelled: u64,
    coalitions: u64,
    coalesced: u64,
}

/// Dense index of a launch path into the per-path EWMA array.
fn path_index(path: LaunchPath) -> usize {
    match path {
        LaunchPath::ColdStart => 0,
        LaunchPath::WarmHit => 1,
    }
}

struct SchedState {
    queues: [VecDeque<Pending>; Priority::COUNT],
    /// Smooth-WRR credit per class; grows while a class is backlogged,
    /// drains when it wins an admission.
    credits: [i64; Priority::COUNT],
    inflight_global: usize,
    inflight_model: Vec<usize>,
    max_inflight_global: usize,
    max_inflight_model: Vec<usize>,
    next_seq: u64,
    shutting_down: bool,
    counters: Counters,
    admission_log: Vec<u64>,
    /// Admission groups aligned with `admission_log`: one inner vec per
    /// admitted execution pass (coalitions keep their members together).
    admission_groups: Vec<Vec<u64>>,
    /// Smoothed observed latency per launch path, indexed by
    /// [`path_index`] (cold starts and warm hits regress separately — a
    /// warm pool must tighten the `retry_after` hint, not be averaged
    /// away into the cold estimate).
    ewma_latency_us: [f64; 2],
}

impl SchedState {
    /// The path-mix-weighted latency estimate `retry_after` hints use:
    /// each path's EWMA weighted by how many completions took it. 0.0
    /// before the first completion.
    fn blended_latency_us(&self) -> f64 {
        let cold_n = self.counters.cold_starts as f64;
        let warm_n = self.counters.warm_hits as f64;
        let total = cold_n + warm_n;
        if total == 0.0 {
            return 0.0;
        }
        (self.ewma_latency_us[0] * cold_n + self.ewma_latency_us[1] * warm_n) / total
    }
}

struct SchedulerCore {
    cfg: SchedulerConfig,
    models: Vec<ModelEntry>,
    by_name: HashMap<String, usize>,
    /// Per-model arrival-history miners (`Some` iff `cfg.predictor`).
    /// Locked independently of `state`: predictor decisions launch trees,
    /// which must never happen under the scheduler lock.
    predictors: Vec<Option<Mutex<Predictor>>>,
    /// Serializes decision *application* per model: concurrent enqueues
    /// would otherwise read the same pre-launch `warm_live_trees` count
    /// and launch duplicate trees (a pre-warm in flight is not yet
    /// visible as live). Held across the launches; never taken together
    /// with `state` or a predictor lock.
    prewarm_apply: Vec<Mutex<()>>,
    state: Mutex<SchedState>,
    /// Signaled on completions, harvests and queue transitions (drain).
    idle: Condvar,
}

/// The request fields the predictor needs, captured *before* the request
/// is moved into the queue. The per-row payload estimate is pure
/// computation (no staging), so capturing it on the backpressure fast
/// path is cheap; the potentially expensive `Auto` resolution happens
/// later, in [`SchedulerCore::resolve_shape`], only for accepted
/// requests.
#[derive(Clone, Copy)]
struct ArrivalShape {
    variant: Variant,
    workers: u32,
    memory_mb: u32,
    /// Wire bytes per row of the first batch; `None` for empty requests
    /// (they fail at execution with `EmptyRequest`, never reach a tree).
    est_bytes_per_row: Option<usize>,
}

impl ArrivalShape {
    fn capture(req: &BatchedRequest) -> ArrivalShape {
        ArrivalShape {
            variant: req.variant,
            workers: req.workers.max(1),
            memory_mb: req.memory_mb,
            est_bytes_per_row: req
                .batches
                .first()
                .map(|first| fsd_sparse::codec::encoded_size(first) / first.n_rows().max(1)),
        }
    }
}

impl SchedulerCore {
    /// The warm-tree shape an accepted request will run as, for the
    /// predictor: `None` for requests that run no tree (Serial — they
    /// advance the predictor's clock without claiming warm capacity).
    /// `Auto` resolves through `FsdService::resolve` — the same resolver
    /// the execution path uses, so predicted shapes always match the trees
    /// requests actually run on. Resolution may stage partitions — only
    /// ever paid for accepted requests.
    fn resolve_shape(service: &FsdService, shape: ArrivalShape) -> Option<TreeKey> {
        let resolved = match (shape.variant, shape.est_bytes_per_row) {
            (Variant::Auto, None) => return None,
            (Variant::Auto, Some(est)) => service.resolve(Variant::Auto, shape.workers, est),
            (
                v @ (Variant::Serial
                | Variant::Queue
                | Variant::Object
                | Variant::Hybrid
                | Variant::Direct),
                _,
            ) => v,
        };
        resolved.channel_name().map(|_| TreeKey {
            variant: resolved,
            workers: shape.workers,
            memory_mb: shape.memory_mb,
        })
    }

    /// Feeds one **accepted** arrival's resolved shape to the model's
    /// predictor and applies the resulting decision set (pre-warms +
    /// evictions). Runs on the enqueueing thread — in manual mode that is
    /// the harness driver, so pool mutations stay totally ordered and
    /// replays deterministic. Rejected arrivals never reach this method:
    /// a flood of `Overloaded` rejections must not inflate pre-warm
    /// targets.
    fn drive_predictor(&self, model: usize, resolved: Option<TreeKey>) {
        let Some(predictor) = &self.predictors[model] else {
            return;
        };
        let decisions = predictor.lock().observe(resolved);
        self.apply_decisions(model, &decisions, true);
    }

    /// Re-applies every predictive model's *standing* decisions, evictions
    /// only — the drain tick. Pre-warm top-ups are deliberately excluded:
    /// between arrivals, parked counts dip while requests hold trees, and
    /// topping those dips up would over-provision (and make pool contents
    /// depend on dispatch timing instead of the arrival history).
    fn apply_standing_evictions(&self) {
        for model in 0..self.models.len() {
            let Some(predictor) = &self.predictors[model] else {
                continue;
            };
            let decisions = predictor.lock().decisions();
            self.apply_decisions(model, &decisions, false);
        }
    }

    /// Applies a decision set against the model's warm pool: evictions
    /// always, pre-warms (up to target, counting what is already parked)
    /// only when `prewarm` is set. Idempotent — re-applying an already
    /// satisfied decision set is a no-op.
    fn apply_decisions(&self, model: usize, decisions: &[PrewarmDecision], prewarm: bool) {
        // One applier per model at a time, so every top-up reads live
        // counts that include the previous applier's launches.
        let _applying = self.prewarm_apply[model].lock();
        let service = &self.models[model].service;
        let mut prewarmed = 0u64;
        let mut evicted = 0u64;
        for decision in decisions {
            match *decision {
                PrewarmDecision::Warm { shape, target } if prewarm => {
                    // Top up against *live* trees (parked + in service):
                    // a burst's own checkouts must not read as missing
                    // capacity, or auto mode would launch a redundant
                    // tree per in-flight request.
                    let live =
                        service.warm_live_trees(shape.variant, shape.workers, shape.memory_mb);
                    for _ in live..target {
                        // A failed pre-warm launch is a prediction the
                        // platform declined, not a request error: skip it
                        // and let the request pay its own cold start.
                        if service
                            .prewarm_tree(shape.variant, shape.workers, shape.memory_mb)
                            .is_ok()
                        {
                            prewarmed += 1;
                        }
                    }
                }
                PrewarmDecision::Warm { .. } => {}
                PrewarmDecision::Evict { shape } => {
                    evicted +=
                        service.evict_warm_trees(shape.variant, shape.workers, shape.memory_mb)
                            as u64;
                }
            }
        }
        if prewarmed > 0 || evicted > 0 {
            let mut state = self.state.lock();
            state.counters.prewarmed += prewarmed;
            state.counters.predictor_evicted += evicted;
        }
    }
    /// Releases a harvested ticket's slot (manual mode only; in auto mode
    /// the slot was already released at completion). A coalition's slot is
    /// shared by every member ticket and releases only when the **last**
    /// member is harvested — a coalition of `k` tickets frees one slot.
    fn on_harvest(&self, shared: &TicketShared) {
        if !self.cfg.manual_dispatch {
            return;
        }
        // Take the hold before touching scheduler state: slot mutexes are
        // leaf locks, never held while waiting on `state`.
        let hold = shared.slot.lock().take();
        let Some(hold) = hold else {
            // Never admitted (cancelled at shutdown while queued): no slot
            // to release.
            return;
        };
        if hold.remaining.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        let mut state = self.state.lock();
        state.inflight_global = state.inflight_global.saturating_sub(1);
        state.inflight_model[shared.model] = state.inflight_model[shared.model].saturating_sub(1);
        drop(state);
        self.idle.notify_all();
    }

    /// Backpressure hint: how long (virtual time) the current backlog
    /// would take to drain a slot, from the per-launch-path latency EWMAs
    /// blended by the observed warm/cold mix — a warm pool that starts
    /// absorbing traffic tightens the hint instead of being averaged into
    /// the cold estimate. A seeded ±[`RETRY_HINT_JITTER`] factor
    /// decorrelates the herd (every client of one overload burst would
    /// otherwise be told the same return instant) while staying a pure
    /// function of the region seed and the rejection count — identically
    /// seeded replays hint bit-identically.
    fn retry_after(&self, state: &SchedState) -> VirtualTime {
        let backlog =
            state.queues.iter().map(VecDeque::len).sum::<usize>() + state.inflight_global + 1;
        let blended = state.blended_latency_us();
        let per = if blended > 0.0 {
            blended
        } else {
            DEFAULT_LATENCY_US
        };
        let waves = (backlog as f64 / self.cfg.global_cap.max(1) as f64).ceil();
        let seed = self.models[0].service.env().config().seed;
        let draw = state.counters.rejected.iter().sum::<u64>();
        let unit = fsd_comm::unit_from(fsd_comm::mix64(
            seed.rotate_left(17) ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ));
        let factor = 1.0 - RETRY_HINT_JITTER + 2.0 * RETRY_HINT_JITTER * unit;
        VirtualTime::from_micros((per * waves * factor).ceil() as u64)
    }

    /// Admits as many queued execution passes as the caps allow. With
    /// continuous batching ([`SchedulerConfig::batched`]) a pass may be a
    /// multi-member coalition — one concurrency slot, one tree pass —
    /// otherwise every group is a singleton. Must run with the state lock
    /// held; returns the admitted groups for the caller to spawn *after*
    /// dropping the lock.
    fn dispatch_locked(&self, state: &mut SchedState) -> Vec<Vec<Pending>> {
        let mut admitted = Vec::new();
        loop {
            if state.inflight_global >= self.cfg.global_cap {
                break;
            }
            // A class is backlogged if non-empty; eligible if additionally
            // its head's model has a free slot (head-of-line per class
            // keeps the admission order a pure function of enqueue order).
            let mut backlogged = [false; Priority::COUNT];
            let mut eligible = [false; Priority::COUNT];
            for (i, q) in state.queues.iter().enumerate() {
                if let Some(head) = q.front() {
                    backlogged[i] = true;
                    eligible[i] = state.inflight_model[head.ticket.model]
                        < self.models[head.ticket.model].cap;
                }
            }
            if !eligible.iter().any(|&e| e) {
                break;
            }
            // Smooth weighted round-robin over backlogged classes: every
            // backlogged class earns its weight each round (so a
            // model-blocked class builds priority for when it unblocks),
            // the eligible class with the highest credit wins and pays the
            // round's total weight back.
            let mut round_weight = 0i64;
            for (i, &is_backlogged) in backlogged.iter().enumerate() {
                if is_backlogged {
                    let w = self.cfg.weights[i].max(1) as i64;
                    state.credits[i] += w;
                    round_weight += w;
                }
            }
            let winner = (0..Priority::COUNT)
                .filter(|&i| eligible[i])
                .max_by_key(|&i| (state.credits[i], std::cmp::Reverse(i)))
                .expect("an eligible class exists");
            state.credits[winner] -= round_weight;
            let pending = state.queues[winner].pop_front().expect("eligible head");
            let model = pending.ticket.model;
            let mut group = vec![pending];
            // Coalesce compatible followers behind the head: same model,
            // same resolved shape, arrivals within the window — and never
            // across classes. Fairness rule: while Interactive traffic
            // waits, a Batch head is admitted *alone* (Interactive
            // preempts the window close; a fat Batch coalition must not
            // widen ahead of latency-sensitive work).
            if let Some(batching) = self.cfg.batching {
                let interactive_waiting = winner == Priority::Batch.index()
                    && !state.queues[Priority::Interactive.index()].is_empty();
                if let (Some(key), false) = (group[0].shape, interactive_waiting) {
                    let head_arrival = group[0].arrival.as_micros();
                    let window = batching.window.as_micros();
                    let max_batch = batching.max_batch.max(1);
                    let queue = &mut state.queues[winner];
                    let mut i = 0;
                    while i < queue.len() && group.len() < max_batch {
                        let member = &queue[i];
                        let joins = member.ticket.model == model
                            && member.shape == Some(key)
                            && member.arrival.as_micros().abs_diff(head_arrival) <= window;
                        if joins {
                            group.push(queue.remove(i).expect("scanned index in bounds"));
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            // The whole group holds ONE concurrency slot: its members run
            // as a single tree pass.
            state.inflight_global += 1;
            state.inflight_model[model] += 1;
            state.max_inflight_global = state.max_inflight_global.max(state.inflight_global);
            state.max_inflight_model[model] =
                state.max_inflight_model[model].max(state.inflight_model[model]);
            state.counters.admitted[winner] += group.len() as u64;
            if group.len() > 1 {
                state.counters.coalitions += 1;
                state.counters.coalesced += group.len() as u64;
            }
            let hold = Arc::new(SlotHold {
                remaining: AtomicUsize::new(group.len()),
            });
            for member in &group {
                *member.ticket.slot.lock() = Some(hold.clone());
            }
            if self.cfg.record_admissions {
                for member in &group {
                    state.admission_log.push(member.ticket.seq);
                }
                state
                    .admission_groups
                    .push(group.iter().map(|m| m.ticket.seq).collect());
            }
            admitted.push(group);
        }
        admitted
    }

    /// Spawns one executor thread per admitted group: a singleton runs
    /// [`FsdService::submit_batched`], a coalition runs
    /// [`FsdService::submit_coalesced`] — one tree pass, one report per
    /// member under its own flow id.
    fn spawn(self: &Arc<Self>, admitted: Vec<Vec<Pending>>) {
        for group in admitted {
            let core = self.clone();
            let model = group[0].ticket.model;
            let service = self.models[model].service.clone();
            std::thread::spawn(move || {
                let (metas, reqs): (Vec<_>, Vec<_>) = group
                    .into_iter()
                    .map(|p| ((p.ticket, p.arrival, p.shape, p.retries_left), p.req))
                    .unzip();
                let results = if reqs.len() == 1 {
                    vec![service.submit_batched(&reqs[0])]
                } else {
                    service.submit_coalesced(&reqs)
                };
                debug_assert_eq!(metas.len(), results.len());

                // Completion bookkeeping first, then deliver the results:
                // a manual-mode harvester must observe consistent counters.
                // A retryable failure with budget left re-enters its class
                // queue at the *head* (it already waited its turn once) —
                // not re-counted under `enqueued`, never re-fed to the
                // predictor, so admission is charged exactly once per
                // logical request.
                let mut deliver = Vec::with_capacity(results.len());
                let mut state = core.state.lock();
                for (((ticket, arrival, shape, retries_left), req), result) in
                    metas.into_iter().zip(reqs).zip(results)
                {
                    match result {
                        Ok(report) => {
                            state.counters.completed += 1;
                            match report.launch {
                                LaunchPath::WarmHit => state.counters.warm_hits += 1,
                                LaunchPath::ColdStart => state.counters.cold_starts += 1,
                            }
                            let l = report.latency.as_micros() as f64;
                            let e = &mut state.ewma_latency_us[path_index(report.launch)];
                            *e = if *e == 0.0 {
                                l
                            } else {
                                (1.0 - EWMA_ALPHA) * *e + EWMA_ALPHA * l
                            };
                            deliver.push((ticket, Ok(report)));
                        }
                        Err(e) => {
                            let cause = FailureCause::of(&e);
                            if retries_left > 0 && cause.is_retryable() && !state.shutting_down {
                                // Manual mode: this member's share of the
                                // pass slot must release *before* the
                                // re-admission assigns a fresh hold, or the
                                // old slot leaks and wedges the caps.
                                if core.cfg.manual_dispatch {
                                    if let Some(hold) = ticket.slot.lock().take() {
                                        if hold.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                                            state.inflight_global =
                                                state.inflight_global.saturating_sub(1);
                                            state.inflight_model[model] =
                                                state.inflight_model[model].saturating_sub(1);
                                        }
                                    }
                                }
                                state.counters.retried += 1;
                                let class = ticket.priority.index();
                                state.queues[class].push_front(Pending {
                                    ticket,
                                    req,
                                    arrival,
                                    shape,
                                    retries_left: retries_left - 1,
                                });
                            } else {
                                state.counters.failed += 1;
                                state.counters.failed_by[cause.index()] += 1;
                                deliver.push((ticket, Err(e)));
                            }
                        }
                    }
                }
                let follow_up = if core.cfg.manual_dispatch {
                    Vec::new()
                } else {
                    // Auto mode: success or error, the group's single slot
                    // releases as soon as the pass finishes and pulls in
                    // the next request(s) — a failing pass must never
                    // wedge the queue. Requeued retries sit at their class
                    // head and are picked up by this same dispatch pass.
                    state.inflight_global -= 1;
                    state.inflight_model[model] -= 1;
                    core.dispatch_locked(&mut state)
                };
                drop(state);
                core.idle.notify_all();
                core.spawn(follow_up);

                for (ticket, result) in deliver {
                    let mut cell = ticket.cell.lock();
                    cell.result = Some(result);
                    drop(cell);
                    ticket.done.notify_all();
                }
            });
        }
    }
}

/// Builds a [`Scheduler`] over one or more registered models.
pub struct SchedulerBuilder {
    cfg: SchedulerConfig,
    models: Vec<(String, Arc<FsdService>, Option<usize>)>,
}

impl SchedulerBuilder {
    /// Starts a builder with the given configuration.
    pub fn new(cfg: SchedulerConfig) -> SchedulerBuilder {
        SchedulerBuilder {
            cfg,
            models: Vec::new(),
        }
    }

    /// Registers a model whose concurrency cap is derived from the §IV-C
    /// recommendation ([`derive_model_cap`] at `cfg.typical_workers`).
    pub fn model(self, name: impl Into<String>, service: Arc<FsdService>) -> SchedulerBuilder {
        self.register(name, service, None)
    }

    /// Registers a model with an explicit concurrency cap.
    pub fn model_with_cap(
        self,
        name: impl Into<String>,
        service: Arc<FsdService>,
        cap: usize,
    ) -> SchedulerBuilder {
        self.register(name, service, Some(cap.max(1)))
    }

    fn register(
        mut self,
        name: impl Into<String>,
        service: Arc<FsdService>,
        cap: Option<usize>,
    ) -> SchedulerBuilder {
        self.models.push((name.into(), service, cap));
        self
    }

    /// Assembles the scheduler.
    ///
    /// # Panics
    /// If no model was registered or a name repeats.
    pub fn build(self) -> Scheduler {
        assert!(
            !self.models.is_empty(),
            "scheduler needs at least one registered model"
        );
        let typical = self.cfg.typical_workers;
        let mut models = Vec::with_capacity(self.models.len());
        let mut by_name = HashMap::new();
        for (name, service, cap) in self.models {
            let cap = cap.unwrap_or_else(|| derive_model_cap(&service, typical));
            let idx = models.len();
            let previous = by_name.insert(name.clone(), idx);
            assert!(previous.is_none(), "model {name:?} registered twice");
            models.push(ModelEntry { name, service, cap });
        }
        let n = models.len();
        let predictors = models
            .iter()
            .map(|m| {
                self.cfg.predictor.map(|pc| {
                    assert!(
                        m.service.warm_pool_stats().is_some(),
                        "predictive pre-warming requires model {:?} to have a \
                         warm pool (ServiceBuilder::warm_pool / auto_warm_pool)",
                        m.name
                    );
                    Mutex::new(Predictor::new(pc))
                })
            })
            .collect();
        Scheduler {
            core: Arc::new(SchedulerCore {
                cfg: self.cfg,
                models,
                by_name,
                predictors,
                prewarm_apply: (0..n).map(|_| Mutex::new(())).collect(),
                state: Mutex::new(SchedState {
                    queues: Default::default(),
                    credits: [0; Priority::COUNT],
                    inflight_global: 0,
                    inflight_model: vec![0; n],
                    max_inflight_global: 0,
                    max_inflight_model: vec![0; n],
                    next_seq: 0,
                    shutting_down: false,
                    counters: Counters::default(),
                    admission_log: Vec::new(),
                    admission_groups: Vec::new(),
                    ewma_latency_us: [0.0; 2],
                }),
                idle: Condvar::new(),
            }),
        }
    }
}

/// The admission-controlled front end over one or more [`FsdService`]s.
/// Cheap to clone; all clones share the same queues and caps.
#[derive(Clone)]
pub struct Scheduler {
    core: Arc<SchedulerCore>,
}

/// Name under which [`Scheduler::wrap`] registers its single model.
pub const DEFAULT_MODEL: &str = "default";

impl Scheduler {
    /// Single-model convenience: wraps `service` under
    /// [`DEFAULT_MODEL`] with a §IV-C-derived cap.
    pub fn wrap(service: Arc<FsdService>, cfg: SchedulerConfig) -> Scheduler {
        SchedulerBuilder::new(cfg)
            .model(DEFAULT_MODEL, service)
            .build()
    }

    /// The global in-flight cap this scheduler enforces.
    pub fn global_cap(&self) -> usize {
        self.core.cfg.global_cap
    }

    /// Whether the scheduler is in manual-dispatch (harness) mode.
    pub fn is_manual(&self) -> bool {
        self.core.cfg.manual_dispatch
    }

    /// The registered model names, in registration order.
    pub fn model_names(&self) -> Vec<&str> {
        self.core.models.iter().map(|m| m.name.as_str()).collect()
    }

    /// The per-model concurrency cap.
    pub fn model_cap(&self, model: &str) -> Option<usize> {
        self.core
            .by_name
            .get(model)
            .map(|&i| self.core.models[i].cap)
    }

    /// The service registered under `model`.
    pub fn service(&self, model: &str) -> Option<&Arc<FsdService>> {
        self.core
            .by_name
            .get(model)
            .map(|&i| &self.core.models[i].service)
    }

    /// Accepts a request into `model`'s intake, or rejects it with
    /// [`FsdError::Overloaded`] (class queue full) /
    /// [`FsdError::ShuttingDown`] (drain in progress) /
    /// [`FsdError::UnknownModel`] (no such registration).
    pub fn enqueue(
        &self,
        model: &str,
        priority: Priority,
        req: BatchedRequest,
    ) -> Result<Ticket, FsdError> {
        self.enqueue_at(model, priority, VirtualTime::ZERO, req)
    }

    /// [`Scheduler::enqueue`] with a retry budget: an admitted request
    /// that fails with a *retryable* cause ([`FailureCause::is_retryable`]
    /// — comm faults and instance crashes, never timeouts) is re-admitted
    /// at the head of its class queue up to `max_retries` times before the
    /// ticket resolves the error. Retries hold no queue slot twice:
    /// admission is charged once per logical request (`enqueued` does not
    /// grow, the predictor is not re-fed), and each re-execution runs
    /// under a fresh flow id so billing never double-counts.
    pub fn enqueue_with_retries(
        &self,
        model: &str,
        priority: Priority,
        req: BatchedRequest,
        max_retries: u32,
    ) -> Result<Ticket, FsdError> {
        self.enqueue_full(model, priority, VirtualTime::ZERO, req, max_retries)
    }

    /// [`Scheduler::enqueue`] with an explicit virtual arrival instant —
    /// the timestamps the continuous-batching window
    /// ([`BatchingConfig::window`]) is measured between. Harness replays
    /// stamp each trace arrival here, so which requests coalesce is a pure
    /// function of the trace, not of wall-clock enqueue timing.
    pub fn enqueue_at(
        &self,
        model: &str,
        priority: Priority,
        arrival: VirtualTime,
        req: BatchedRequest,
    ) -> Result<Ticket, FsdError> {
        self.enqueue_full(model, priority, arrival, req, 0)
    }

    /// The full intake path: explicit arrival stamp *and* retry budget.
    pub fn enqueue_full(
        &self,
        model: &str,
        priority: Priority,
        arrival: VirtualTime,
        req: BatchedRequest,
        max_retries: u32,
    ) -> Result<Ticket, FsdError> {
        let &model_idx = self
            .core
            .by_name
            .get(model)
            .ok_or_else(|| FsdError::UnknownModel {
                name: model.to_string(),
            })?;
        let class = priority.index();
        // Capture the arrival's shape fields (cheap, pure computation)
        // before taking the lock; the potentially expensive `Auto`
        // resolution runs only after acceptance and outside the scheduler
        // lock.
        let need_shape =
            self.core.predictors[model_idx].is_some() || self.core.cfg.batching.is_some();
        let shape = need_shape.then(|| ArrivalShape::capture(&req));
        let mut state = self.core.state.lock();
        if state.shutting_down {
            return Err(FsdError::ShuttingDown);
        }
        if state.queues[class].len() >= self.core.cfg.queue_capacity {
            state.counters.rejected[class] += 1;
            let retry_after = self.core.retry_after(&state);
            return Err(FsdError::Overloaded { retry_after });
        }
        state.next_seq += 1;
        state.counters.enqueued += 1;
        let shared = Arc::new(TicketShared {
            seq: state.next_seq,
            priority,
            model: model_idx,
            cell: Mutex::new(TicketCell { result: None }),
            done: Condvar::new(),
            slot: Mutex::new(None),
        });
        state.queues[class].push_back(Pending {
            ticket: shared.clone(),
            req,
            arrival,
            shape: None,
            retries_left: max_retries,
        });
        drop(state);
        // Resolve the shape only for *accepted* requests (rejected
        // arrivals must never inflate pre-warm targets), then feed the
        // predictor — pre-warm *before* admission, so trees predicted for
        // this arrival's burst are parked by the time the request (and its
        // burst peers) are admitted; in manual mode the same ordering
        // holds trivially, enqueues precede the driver's dispatch call —
        // and stamp the coalescing shape back onto the queued entry.
        if let Some(shape) = shape {
            let resolved =
                SchedulerCore::resolve_shape(&self.core.models[model_idx].service, shape);
            self.core.drive_predictor(model_idx, resolved);
            if self.core.cfg.batching.is_some() {
                let mut state = self.core.state.lock();
                // If auto-mode admission already raced the request out of
                // the queue it dispatched solo — correct either way.
                if let Some(pending) = state.queues[class]
                    .iter_mut()
                    .find(|p| p.ticket.seq == shared.seq)
                {
                    pending.shape = resolved;
                }
            }
        }
        let admitted = if self.core.cfg.manual_dispatch {
            Vec::new()
        } else {
            let mut state = self.core.state.lock();
            let admitted = self.core.dispatch_locked(&mut state);
            drop(state);
            admitted
        };
        self.core.spawn(admitted);
        Ok(Ticket {
            shared,
            core: self.core.clone(),
        })
    }

    /// Single-model convenience for [`Scheduler::wrap`] schedulers.
    pub fn enqueue_default(
        &self,
        priority: Priority,
        req: BatchedRequest,
    ) -> Result<Ticket, FsdError> {
        let name = self.core.models[0].name.clone();
        self.enqueue(&name, priority, req)
    }

    /// Runs one admission pass, spawning every request the caps allow.
    /// Returns how many were admitted. The manual-dispatch driver's pump;
    /// harmless (and normally a no-op) in auto mode. With predictive
    /// pre-warming enabled this is also the drain tick: standing
    /// quiescence evictions are applied first, so a draining system
    /// converges back to zero warm trees.
    pub fn dispatch(&self) -> usize {
        self.core.apply_standing_evictions();
        let mut state = self.core.state.lock();
        let admitted = self.core.dispatch_locked(&mut state);
        drop(state);
        let n = admitted.len();
        self.core.spawn(admitted);
        n
    }

    /// Stops intake: subsequent `enqueue` calls fail with
    /// [`FsdError::ShuttingDown`]. Requests already *admitted* still run;
    /// requests still **queued** are cancelled — their tickets resolve
    /// promptly with [`FsdError::ShuttingDown`] instead of hanging (they
    /// never held a slot, so their harvest releases nothing).
    pub fn shutdown(&self) {
        let cancelled: Vec<Arc<TicketShared>> = {
            let mut state = self.core.state.lock();
            state.shutting_down = true;
            let mut cancelled = Vec::new();
            for queue in &mut state.queues {
                cancelled.extend(queue.drain(..).map(|p| p.ticket));
            }
            state.counters.cancelled += cancelled.len() as u64;
            cancelled
        };
        for ticket in cancelled {
            let mut cell = ticket.cell.lock();
            cell.result = Some(Err(FsdError::ShuttingDown));
            drop(cell);
            ticket.done.notify_all();
        }
        self.core.idle.notify_all();
    }

    /// Blocks until no request is queued or in flight. Call
    /// [`Scheduler::shutdown`] first for a terminal drain; without it the
    /// scheduler simply waits for a momentarily empty system. In manual
    /// mode another thread must keep dispatching and harvesting.
    pub fn drain(&self) {
        let mut state = self.core.state.lock();
        while state.inflight_global > 0 || state.queues.iter().any(|q| !q.is_empty()) {
            self.core
                .idle
                .wait_for(&mut state, Duration::from_millis(50));
        }
    }

    /// Currently queued (accepted, not admitted) requests.
    pub fn queued(&self) -> usize {
        self.core
            .state
            .lock()
            .queues
            .iter()
            .map(VecDeque::len)
            .sum()
    }

    /// Requests currently holding a concurrency slot.
    pub fn inflight(&self) -> usize {
        self.core.state.lock().inflight_global
    }

    /// The admission order (seq numbers) recorded so far. Empty unless
    /// `record_admissions` is set.
    pub fn admission_log(&self) -> Vec<u64> {
        self.core.state.lock().admission_log.clone()
    }

    /// The admission *groups* recorded so far: one inner vec of seq
    /// numbers per admitted execution pass, so coalitions keep their
    /// members together (singletons without batching). Flattening this in
    /// order yields [`Scheduler::admission_log`]. Empty unless
    /// `record_admissions` is set.
    pub fn admission_groups(&self) -> Vec<Vec<u64>> {
        self.core.state.lock().admission_groups.clone()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> SchedStatsSnapshot {
        let state = self.core.state.lock();
        SchedStatsSnapshot {
            enqueued: state.counters.enqueued,
            admitted: state.counters.admitted,
            rejected: state.counters.rejected,
            completed: state.counters.completed,
            failed: state.counters.failed,
            failed_by: state.counters.failed_by,
            retried: state.counters.retried,
            warm_hits: state.counters.warm_hits,
            cold_starts: state.counters.cold_starts,
            prewarmed: state.counters.prewarmed,
            predictor_evicted: state.counters.predictor_evicted,
            cancelled: state.counters.cancelled,
            coalitions: state.counters.coalitions,
            coalesced: state.counters.coalesced,
            queued: state.queues.iter().map(VecDeque::len).sum(),
            inflight: state.inflight_global,
            max_inflight: state.max_inflight_global,
            max_inflight_per_model: state.max_inflight_model.clone(),
            ewma_latency: VirtualTime::from_micros(state.blended_latency_us().round() as u64),
            ewma_cold_latency: VirtualTime::from_micros(state.ewma_latency_us[0].round() as u64),
            ewma_warm_latency: VirtualTime::from_micros(state.ewma_latency_us[1].round() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_core::ServiceBuilder;
    use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
    use fsd_sparse::SparseRows;

    fn service(seed: u64) -> (Arc<FsdService>, SparseRows, SparseRows) {
        let spec = DnnSpec {
            neurons: 64,
            layers: 2,
            nnz_per_row: 8,
            bias: -0.25,
            clip: 32.0,
            seed,
        };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(8, seed));
        let expected = dnn.serial_inference(&inputs);
        (
            Arc::new(
                ServiceBuilder::new(dnn)
                    .deterministic(seed)
                    .prewarm(1)
                    .prewarm(2)
                    .build(),
            ),
            inputs,
            expected,
        )
    }

    fn request(inputs: &SparseRows, variant: Variant, workers: u32) -> BatchedRequest {
        BatchedRequest {
            variant,
            workers,
            memory_mb: 1769,
            batches: vec![inputs.clone()],
        }
    }

    #[test]
    fn wrap_serves_a_request_end_to_end() {
        let (svc, inputs, expected) = service(1);
        let sched = Scheduler::wrap(svc, SchedulerConfig::default());
        let ticket = sched
            .enqueue_default(Priority::Interactive, request(&inputs, Variant::Serial, 1))
            .expect("accepted");
        let report = ticket.wait().expect("runs");
        assert_eq!(report.first_output(), &expected);
        let stats = sched.stats();
        assert_eq!(stats.enqueued, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.total_admitted(), 1);
        assert_eq!(stats.inflight, 0);
    }

    #[test]
    fn unknown_model_is_rejected() {
        let (svc, inputs, _) = service(2);
        let sched = Scheduler::wrap(svc, SchedulerConfig::default());
        let err = sched
            .enqueue(
                "ghost",
                Priority::Batch,
                request(&inputs, Variant::Serial, 1),
            )
            .unwrap_err();
        assert_eq!(
            err,
            FsdError::UnknownModel {
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn full_queue_rejects_with_retry_hint() {
        let (svc, inputs, _) = service(3);
        // Manual dispatch with nothing dispatched: the queue fills.
        let sched = Scheduler::wrap(svc, SchedulerConfig::default().manual().queue_capacity(2));
        let t1 = sched
            .enqueue_default(Priority::Batch, request(&inputs, Variant::Serial, 1))
            .expect("fits");
        let t2 = sched
            .enqueue_default(Priority::Batch, request(&inputs, Variant::Serial, 1))
            .expect("fits");
        match sched.enqueue_default(Priority::Batch, request(&inputs, Variant::Serial, 1)) {
            Err(FsdError::Overloaded { retry_after }) => {
                assert!(retry_after > VirtualTime::ZERO, "hint must be positive");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // The other class's bounded queue is independent.
        let t3 = sched
            .enqueue_default(Priority::Interactive, request(&inputs, Variant::Serial, 1))
            .expect("other class fits");
        assert_eq!(sched.stats().total_rejected(), 1);
        sched.dispatch();
        for t in [t1, t2, t3] {
            t.wait().expect("runs");
        }
    }

    #[test]
    fn shutdown_rejects_new_and_cancels_queued_tickets() {
        let (svc, inputs, expected) = service(4);
        let sched = Scheduler::wrap(svc, SchedulerConfig::default().global_cap(1));
        let tickets: Vec<Ticket> = (0..3)
            .map(|_| {
                sched
                    .enqueue_default(Priority::Interactive, request(&inputs, Variant::Serial, 1))
                    .expect("accepted")
            })
            .collect();
        sched.shutdown();
        assert_eq!(
            sched
                .enqueue_default(Priority::Interactive, request(&inputs, Variant::Serial, 1))
                .unwrap_err(),
            FsdError::ShuttingDown
        );
        // Whatever admission raced ahead of the shutdown still runs to
        // completion; everything still queued resolves ShuttingDown
        // promptly instead of hanging its ticket holder.
        let mut completed = 0u64;
        let mut cancelled = 0u64;
        for t in tickets {
            match t.wait() {
                Ok(report) => {
                    assert_eq!(report.first_output(), &expected);
                    completed += 1;
                }
                Err(FsdError::ShuttingDown) => cancelled += 1,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert_eq!(completed + cancelled, 3);
        assert!(completed >= 1, "the admitted head must still run");
        sched.drain();
        let stats = sched.stats();
        assert_eq!(stats.completed, completed);
        assert_eq!(stats.cancelled, cancelled);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.inflight, 0);
    }

    #[test]
    fn global_cap_is_never_exceeded() {
        let (svc, inputs, _) = service(5);
        let sched = Scheduler::wrap(svc, SchedulerConfig::default().global_cap(2));
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| {
                let class = if i % 2 == 0 {
                    Priority::Interactive
                } else {
                    Priority::Batch
                };
                sched
                    .enqueue_default(class, request(&inputs, Variant::Serial, 1))
                    .expect("accepted")
            })
            .collect();
        for t in tickets {
            t.wait().expect("runs");
        }
        let stats = sched.stats();
        assert!(
            stats.max_inflight <= 2,
            "cap 2 exceeded: {}",
            stats.max_inflight
        );
        assert_eq!(stats.completed, 6);
    }

    #[test]
    fn per_model_cap_constrains_only_that_model() {
        let (svc_a, inputs_a, _) = service(6);
        let (svc_b, inputs_b, _) = service(7);
        let sched = SchedulerBuilder::new(SchedulerConfig::default().global_cap(4))
            .model_with_cap("a", svc_a, 1)
            .model_with_cap("b", svc_b, 4)
            .build();
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(
                sched
                    .enqueue(
                        "a",
                        Priority::Interactive,
                        request(&inputs_a, Variant::Serial, 1),
                    )
                    .expect("accepted"),
            );
            tickets.push(
                sched
                    .enqueue(
                        "b",
                        Priority::Interactive,
                        request(&inputs_b, Variant::Serial, 1),
                    )
                    .expect("accepted"),
            );
        }
        for t in tickets {
            t.wait().expect("runs");
        }
        let stats = sched.stats();
        assert_eq!(stats.max_inflight_per_model.len(), 2);
        assert!(stats.max_inflight_per_model[0] <= 1, "model a cap violated");
        assert!(stats.max_inflight <= 4);
        assert_eq!(stats.completed, 6);
    }

    #[test]
    fn derived_cap_for_tiny_models_is_compute_bound() {
        let (svc, ..) = service(8);
        // A model the recommender routes to Serial uses no channel: cap is
        // the derived maximum and the global cap governs.
        assert_eq!(derive_model_cap(&svc, 3), MAX_DERIVED_CAP);
        let sched = Scheduler::wrap(svc, SchedulerConfig::default());
        assert_eq!(sched.model_cap(DEFAULT_MODEL), Some(MAX_DERIVED_CAP));
        assert_eq!(sched.model_names(), vec![DEFAULT_MODEL]);
    }

    #[test]
    fn auto_cap_derivation_and_execution_agree_near_the_threshold() {
        // A model deliberately too large for its configured Serial
        // instance, so Auto routes to a channel variant — right where the
        // scheduler's old private byte-size heuristic could drift from
        // the service's resolver. Cap derivation, the planning hook and
        // the executed report must all name the same variant, *including
        // at the Queue → Hybrid band edge* where a divergent estimate
        // would first show.
        let spec = DnnSpec {
            neurons: 768,
            layers: 6,
            nnz_per_row: 24,
            bias: -0.25,
            clip: 32.0,
            seed: 41,
        };
        let dnn = Arc::new(fsd_model::generate_dnn(&spec));
        let svc = Arc::new(
            ServiceBuilder::new(dnn.clone())
                .deterministic(41)
                .serial_memory_mb(1)
                .build(),
        );
        assert_ne!(
            svc.recommend(3, svc.est_bytes_per_row()).variant,
            Variant::Serial,
            "model must not fit Serial"
        );
        // Binary-search the per-row estimate where the resolver leaves
        // the Queue band: one byte under the flip stays Queue, the flip
        // itself is Hybrid — the band edge the old private heuristic
        // could silently cross differently than execution.
        let (mut lo, mut hi) = (1usize, 1usize << 30);
        // The Direct band sits below Queue; walk the lower bound up into
        // the Queue band first (Queue spans an 8× range of per-pair
        // volume, so doubling cannot step over it).
        assert_eq!(svc.resolve(Variant::Auto, 3, lo), Variant::Direct);
        while svc.resolve(Variant::Auto, 3, lo) == Variant::Direct {
            lo *= 2;
        }
        assert_eq!(svc.resolve(Variant::Auto, 3, lo), Variant::Queue);
        assert_ne!(svc.resolve(Variant::Auto, 3, hi), Variant::Queue);
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if svc.resolve(Variant::Auto, 3, mid) == Variant::Queue {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        assert_eq!(svc.resolve(Variant::Auto, 3, lo), Variant::Queue);
        assert_eq!(
            svc.resolve(Variant::Auto, 3, hi),
            Variant::Hybrid,
            "the first band past Queue must be Hybrid"
        );

        // One Auto request on each side of the edge: per-row wire sizes
        // engineered to straddle the flip estimate (rows of `k` nonzeros
        // each), so the per-request refinement resolves Queue just under
        // it and Hybrid just over it. Both executions must agree with
        // the plan and with what the cap was derived on.
        let row_nnz_for = |est: usize| (est.saturating_sub(16) / 8).max(1);
        let inputs_with = |k: usize| {
            let cols: Vec<u32> = (0..k as u32).collect();
            fsd_sparse::SparseRows::from_rows(
                k,
                (0..8u32).map(|i| {
                    let vals: Vec<f32> = (0..k)
                        .map(|j| 0.5 + ((i as usize + j) % 7) as f32 * 0.1)
                        .collect();
                    (i, cols.clone(), vals)
                }),
            )
        };
        let cap = derive_model_cap(&svc, 3);
        assert!((1..=MAX_DERIVED_CAP).contains(&cap));
        for (k, expected_side) in [
            (row_nnz_for(hi / 2), Variant::Queue),
            (row_nnz_for(2 * hi), Variant::Hybrid),
        ] {
            let inputs = inputs_with(k);
            let est = fsd_sparse::codec::encoded_size(&inputs) / inputs.n_rows().max(1);
            let req = BatchedRequest {
                variant: Variant::Auto,
                workers: 3,
                memory_mb: 1769,
                batches: vec![inputs],
            };
            let planned = svc.resolve_variant(&req);
            assert_eq!(planned, expected_side, "est {est} landed off-band");
            assert_eq!(
                planned,
                svc.resolve(Variant::Auto, 3, est),
                "plan diverged from the shared resolver"
            );
            let report = svc.submit_batched(&req).expect("auto runs");
            assert_eq!(
                report.variant, planned,
                "execution diverged from the resolver the cap was derived on"
            );
            assert_eq!(
                report.first_output(),
                &dnn.serial_inference(&req.batches[0])
            );
        }
    }

    #[test]
    fn admission_path_routes_through_the_warm_pool() {
        let spec = fsd_model::DnnSpec {
            neurons: 64,
            layers: 2,
            nnz_per_row: 8,
            bias: -0.25,
            clip: 32.0,
            seed: 31,
        };
        let dnn = Arc::new(fsd_model::generate_dnn(&spec));
        let inputs = fsd_model::generate_inputs(spec.neurons, &InputSpec::scaled(8, 31));
        let svc = Arc::new(
            ServiceBuilder::new(dnn)
                .deterministic(31)
                .warm_pool(2, u64::MAX)
                .build(),
        );
        // Serialize execution so the second request finds the first's tree.
        let sched = Scheduler::wrap(svc.clone(), SchedulerConfig::default().global_cap(1));
        let req = request(&inputs, Variant::Queue, 2);
        let a = sched
            .enqueue_default(Priority::Interactive, req.clone())
            .expect("accepted")
            .wait()
            .expect("cold run");
        let b = sched
            .enqueue_default(Priority::Interactive, req)
            .expect("accepted")
            .wait()
            .expect("warm run");
        assert_eq!(a.launch, fsd_core::LaunchPath::ColdStart);
        assert_eq!(b.launch, fsd_core::LaunchPath::WarmHit);
        assert_eq!(a.outputs, b.outputs, "paths agree on outputs");
        let stats = sched.stats();
        assert_eq!(stats.warm_hits, 1);
        assert_eq!(stats.cold_starts, 1);
        let pool = svc.warm_pool_stats().expect("pool enabled");
        assert_eq!((pool.hits, pool.misses), (1, 1));
    }

    #[test]
    fn weighted_fifo_interleaves_classes_deterministically() {
        let (svc, inputs, _) = service(9);
        let sched = Scheduler::wrap(
            svc,
            SchedulerConfig::default()
                .manual()
                .global_cap(1)
                .weights(2, 1)
                .queue_capacity(32),
        );
        // Backlog both classes fully before any admission.
        let mut tickets = HashMap::new();
        for class in [Priority::Interactive, Priority::Batch] {
            for _ in 0..6 {
                let t = sched
                    .enqueue_default(class, request(&inputs, Variant::Serial, 1))
                    .expect("accepted");
                tickets.insert(t.seq(), t);
            }
        }
        // Drive to completion: dispatch, harvest in admission order.
        let mut harvested = 0;
        while harvested < 12 {
            sched.dispatch();
            let log = sched.admission_log();
            if harvested < log.len() {
                let seq = log[harvested];
                harvested += 1;
                tickets.remove(&seq).expect("ticket").wait().expect("runs");
            }
        }
        // Interactive seqs are 1..=6, Batch 7..=12. With weights 2:1 the
        // smooth-WRR admission pattern is I B I · I B I · I B (2:1 in
        // every window of 3), then the Batch tail — exact and reproducible
        // because every decision happened on this thread.
        let log = sched.admission_log();
        assert_eq!(log, vec![1, 7, 2, 3, 8, 4, 5, 9, 6, 10, 11, 12]);
        assert_eq!(sched.stats().max_inflight, 1);
    }

    #[test]
    fn interactive_preempts_batch_coalition_and_followers_coalesce() {
        let spec = DnnSpec {
            neurons: 64,
            layers: 2,
            nnz_per_row: 8,
            bias: -0.25,
            clip: 32.0,
            seed: 11,
        };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(8, 11));
        let expected = dnn.serial_inference(&inputs);
        let svc = Arc::new(ServiceBuilder::new(dnn).deterministic(11).build());
        let sched = Scheduler::wrap(
            svc,
            SchedulerConfig::default()
                .manual()
                .global_cap(1)
                .weights(1, 3)
                .batched(BatchingConfig::default()),
        );
        // Three compatible Batch requests (seqs 1..=3), then one
        // Interactive (seq 4). Batch wins the first SWRR round (weight 3),
        // but its head must run ALONE while Interactive waits.
        let mut tickets = HashMap::new();
        for _ in 0..3 {
            let t = sched
                .enqueue_default(Priority::Batch, request(&inputs, Variant::Queue, 2))
                .expect("accepted");
            tickets.insert(t.seq(), t);
        }
        let t = sched
            .enqueue_default(Priority::Interactive, request(&inputs, Variant::Queue, 2))
            .expect("accepted");
        tickets.insert(t.seq(), t);

        let mut harvested = 0;
        while harvested < 4 {
            sched.dispatch();
            let log = sched.admission_log();
            while harvested < log.len() {
                let seq = log[harvested];
                harvested += 1;
                let report = tickets.remove(&seq).expect("ticket").wait().expect("runs");
                assert_eq!(report.first_output(), &expected);
            }
        }
        // Group 1: the Batch head, solo (Interactive was waiting — the
        // fairness rule forbids widening the coalition ahead of it).
        // Group 2: the Interactive request. Group 3: the remaining Batch
        // pair coalesces once no Interactive traffic waits.
        assert_eq!(sched.admission_groups(), vec![vec![1], vec![4], vec![2, 3]]);
        let stats = sched.stats();
        assert_eq!(stats.coalitions, 1);
        assert_eq!(stats.coalesced, 2);
        assert_eq!(stats.max_inflight, 1, "a coalition holds one slot");
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn retry_hint_tightens_after_warm_hits() {
        let spec = DnnSpec {
            neurons: 64,
            layers: 2,
            nnz_per_row: 8,
            bias: -0.25,
            clip: 32.0,
            seed: 12,
        };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(8, 12));
        let svc = Arc::new(
            ServiceBuilder::new(dnn)
                .deterministic(12)
                .warm_pool(1, u64::MAX)
                .build(),
        );
        let sched = Scheduler::wrap(
            svc,
            SchedulerConfig::default()
                .manual()
                .global_cap(1)
                .queue_capacity(1),
        );
        let run_one = || {
            let t = sched
                .enqueue_default(Priority::Batch, request(&inputs, Variant::Queue, 2))
                .expect("accepted");
            sched.dispatch();
            t.wait().expect("runs")
        };
        let overload_hint = || {
            let parked = sched
                .enqueue_default(Priority::Batch, request(&inputs, Variant::Queue, 2))
                .expect("fills the queue");
            let hint =
                match sched.enqueue_default(Priority::Batch, request(&inputs, Variant::Queue, 2)) {
                    Err(FsdError::Overloaded { retry_after }) => retry_after,
                    other => panic!("expected Overloaded, got {other:?}"),
                };
            sched.dispatch();
            (hint, parked.wait().expect("parked request runs"))
        };
        assert_eq!(run_one().launch, LaunchPath::ColdStart);
        // Hint read while only the cold EWMA is seeded...
        let (hint_cold, first_warm) = overload_hint();
        assert_eq!(first_warm.launch, LaunchPath::WarmHit);
        // ...then a few warm hits weight the blended estimate toward the
        // cheaper warm path...
        for _ in 0..3 {
            assert_eq!(run_one().launch, LaunchPath::WarmHit);
        }
        // ...so the *same* backlog state must now hint a shorter retry.
        let (hint_warm, another_warm) = overload_hint();
        assert_eq!(another_warm.launch, LaunchPath::WarmHit);
        assert!(
            hint_warm < hint_cold,
            "hint must tighten after warm hits: {hint_warm:?} !< {hint_cold:?}"
        );
        let stats = sched.stats();
        assert!(stats.ewma_warm_latency < stats.ewma_cold_latency);
        assert!(stats.ewma_warm_latency > VirtualTime::ZERO);
        assert_eq!(stats.cold_starts, 1);
        assert_eq!(stats.warm_hits, 5);
    }

    #[test]
    fn retry_budget_recovers_an_injected_instance_crash() {
        let spec = DnnSpec {
            neurons: 64,
            layers: 2,
            nnz_per_row: 8,
            bias: -0.25,
            clip: 32.0,
            seed: 14,
        };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(8, 14));
        let expected = dnn.serial_inference(&inputs);
        let svc = Arc::new(
            ServiceBuilder::new(dnn)
                .deterministic(14)
                .warm_pool(2, u64::MAX)
                .build(),
        );
        let sched = Scheduler::wrap(svc.clone(), SchedulerConfig::default().global_cap(1));
        let req = request(&inputs, Variant::Queue, 2);
        // Park a tree, then arm a kill on one of its workers through the
        // unified fault surface: the next routed request loses the
        // instance mid-request (FailureCause::InstanceCrash).
        sched
            .enqueue_default(Priority::Interactive, req.clone())
            .expect("accepted")
            .wait()
            .expect("cold run parks a tree");
        assert!(svc.inject_fault(FsdService::warm_worker_fault(Variant::Queue, 2, 1769, 1)));
        // Without a budget the crash surfaces; with one, the scheduler
        // re-admits at the class head and the rerun cold-starts cleanly.
        let report = sched
            .enqueue_with_retries(DEFAULT_MODEL, Priority::Interactive, req, 2)
            .expect("accepted")
            .wait()
            .expect("retry must recover the injected crash");
        assert_eq!(report.first_output(), &expected);
        assert_eq!(report.launch, LaunchPath::ColdStart, "rerun relaunches");
        let stats = sched.stats();
        assert_eq!(stats.enqueued, 2, "a retry is not a new enqueue");
        assert_eq!(stats.retried, 1);
        assert_eq!(stats.failed, 0, "recovered attempts are not failures");
        assert_eq!(stats.failed_by, [0; FailureCause::COUNT]);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.inflight, 0, "retry must not leak a slot");
    }

    #[test]
    fn failure_causes_classify_and_gate_retry() {
        let crash = FsdError::Comm(fsd_faas::CommFailure {
            op: "instance",
            resource: "fsd-warm-1".into(),
            detail: "keep-alive instance terminated".into(),
        });
        assert_eq!(FailureCause::of(&crash), FailureCause::InstanceCrash);
        let comm = FsdError::Comm(fsd_faas::CommFailure {
            op: "publish",
            resource: "fsd-f1-q0".into(),
            detail: "unavailable".into(),
        });
        assert_eq!(FailureCause::of(&comm), FailureCause::Comm);
        let timeout = FsdError::Timeout {
            elapsed: VirtualTime::from_micros(2),
            limit: VirtualTime::from_micros(1),
        };
        assert_eq!(FailureCause::of(&timeout), FailureCause::Timeout);
        assert_eq!(
            FailureCause::of(&FsdError::EmptyRequest),
            FailureCause::Other
        );
        assert!(FailureCause::Comm.is_retryable());
        assert!(FailureCause::InstanceCrash.is_retryable());
        assert!(
            !FailureCause::Timeout.is_retryable(),
            "reruns recompute the same overrun"
        );
        assert!(!FailureCause::Other.is_retryable());
    }

    #[test]
    fn retry_hint_jitter_is_banded_and_seeded() {
        let hints_for = |seed: u64| -> Vec<u64> {
            let (svc, inputs, _) = service(seed);
            let sched = Scheduler::wrap(svc, SchedulerConfig::default().manual().queue_capacity(1));
            let parked = sched
                .enqueue_default(Priority::Batch, request(&inputs, Variant::Serial, 1))
                .expect("fills the queue");
            let hints: Vec<u64> = (0..6)
                .map(|_| {
                    match sched
                        .enqueue_default(Priority::Batch, request(&inputs, Variant::Serial, 1))
                    {
                        Err(FsdError::Overloaded { retry_after }) => retry_after.as_micros(),
                        other => panic!("expected Overloaded, got {other:?}"),
                    }
                })
                .collect();
            sched.dispatch();
            parked.wait().expect("parked request runs");
            hints
        };
        // Before any completion the blended EWMA is unseeded, so the base
        // is DEFAULT_LATENCY_US × 1 wave: every hint must land inside the
        // ±RETRY_HINT_JITTER band around it...
        let hints = hints_for(15);
        let base = DEFAULT_LATENCY_US;
        for &h in &hints {
            let lo = (base * (1.0 - RETRY_HINT_JITTER)).floor() as u64;
            let hi = (base * (1.0 + RETRY_HINT_JITTER)).ceil() as u64;
            assert!((lo..=hi).contains(&h), "hint {h} outside [{lo}, {hi}]");
        }
        // ...vary across successive rejections (herd decorrelation)...
        assert!(
            hints.windows(2).any(|w| w[0] != w[1]),
            "jitter must vary between rejections: {hints:?}"
        );
        // ...and replay bit-identically under the same region seed.
        assert_eq!(hints, hints_for(15), "jitter must be seed-deterministic");
    }
}
