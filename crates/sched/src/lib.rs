//! # fsd-sched — admission control in front of [`FsdService`](fsd_core::FsdService)
//!
//! PR 1 made the service accept concurrent `&self` requests, but nothing
//! bounded or ordered that concurrency: every caller raced straight into
//! the engine, so a burst of large-`P` requests could starve small ones
//! and there was no backpressure story. This crate adds the explicit
//! scheduling layer that serverless serving systems live or die on
//! (λScale's request admission/routing trees; FMI's "saturated but not
//! oversubscribed" communication fabric):
//!
//! * **[`Scheduler`]** owns all request intake:
//!   [`Scheduler::enqueue`] → [`Ticket`] → [`Ticket::wait`];
//! * **priority classes** ([`Priority::Interactive`] / [`Priority::Batch`])
//!   drained by weighted FIFO (smooth weighted round-robin between
//!   backlogged classes, strict FIFO within a class);
//! * **concurrency caps** — a global in-flight cap plus per-model caps
//!   derived from the paper's §IV-C recommendation rules
//!   ([`derive_model_cap`]): the predicted per-tree channel load against
//!   the region's aggregate publish budget;
//! * **bounded queues with explicit backpressure** — a full class queue
//!   rejects with [`FsdError::Overloaded`](fsd_core::FsdError::Overloaded)`{ retry_after }` instead of
//!   buffering without bound;
//! * **graceful drain/shutdown** — [`Scheduler::shutdown`] stops intake,
//!   [`Scheduler::drain`] waits for the backlog to finish;
//! * **predictive pre-warming** ([`SchedulerConfig::predictive`]) — the
//!   [`predictor`] mines each model's arrival history (sliding-window
//!   rate + burst detection per `(variant, P, memory)` shape) and the
//!   intake path pre-warms matching worker trees *before* admission, so
//!   a predicted burst lands on already-parked trees; quiet shapes are
//!   evicted, converging an idle system back to zero pre-warms.
//!
//! The second half of the crate is a **deterministic load-test harness**:
//! [`trace`] generates seeded arrival traces (steady / bursty / flood) and
//! [`harness::replay`] drives them through a manual-dispatch scheduler so
//! that every admission decision happens on the driver thread — same seed
//! ⇒ identical admission order and identical reports, while execution
//! still fans out across real worker threads.
//!
//! ```
//! use fsd_core::{BatchedRequest, ServiceBuilder, Variant};
//! use fsd_model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
//! use fsd_sched::{Priority, Scheduler, SchedulerConfig};
//! use std::sync::Arc;
//!
//! let spec = DnnSpec { neurons: 64, layers: 2, nnz_per_row: 8,
//!                      bias: -0.2, clip: 32.0, seed: 1 };
//! let dnn = Arc::new(generate_dnn(&spec));
//! let inputs = generate_inputs(64, &InputSpec::scaled(8, 1));
//! let service = Arc::new(ServiceBuilder::new(dnn).deterministic(1).build());
//!
//! let sched = Scheduler::wrap(service, SchedulerConfig::default());
//! let ticket = sched
//!     .enqueue_default(Priority::Interactive, BatchedRequest {
//!         variant: Variant::Auto, workers: 2, memory_mb: 1769,
//!         batches: vec![inputs],
//!     })
//!     .unwrap();
//! let report = ticket.wait().unwrap();
//! assert!(!report.outputs.is_empty());
//! sched.shutdown();
//! sched.drain();
//! ```
#![forbid(unsafe_code)]

pub mod harness;
pub mod predictor;
mod scheduler;
pub mod trace;

pub use predictor::{Predictor, PredictorConfig, PrewarmDecision};
pub use scheduler::{
    derive_model_cap, BatchingConfig, FailureCause, Priority, SchedStatsSnapshot, Scheduler,
    SchedulerBuilder, SchedulerConfig, Ticket, DEFAULT_MODEL,
};
pub use trace::{Arrival, FleetArrival};
