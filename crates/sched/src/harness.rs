//! The deterministic load-test driver.
//!
//! [`replay`] pushes a seeded arrival trace through a **manual-dispatch**
//! scheduler from a single driver thread. Every scheduler-state mutation —
//! enqueue, admission ([`Scheduler::dispatch`]) and slot release (ticket
//! harvest) — happens on that thread in a fixed protocol, so the admission
//! order, the rejection set and every per-request report are pure
//! functions of `(trace, scheduler config, model)`. Execution itself still
//! fans out over real threads (each admitted request launches its own
//! coordinator + worker tree), which is exactly what makes the replay a
//! *load* test rather than a unit test: up to `global_cap` whole worker
//! trees run concurrently while the driver's bookkeeping stays serial.
//!
//! Driver protocol, per arrival-instant group (arrivals sharing one
//! virtual timestamp):
//!
//! 1. free capacity the backlog would have drained before this instant:
//!    while all slots are held, harvest the earliest-admitted ticket;
//! 2. enqueue the group's arrivals back to back (a burst arrives faster
//!    than anyone can drain it — this is what fills the bounded queues and
//!    produces backpressure rejections);
//! 3. run one admission pass.
//!
//! After the last group the driver drains: dispatch / harvest in admission
//! order until nothing is queued or running.

use crate::scheduler::{Priority, SchedStatsSnapshot, Scheduler, Ticket};
use crate::trace::{Arrival, FleetArrival};
use fsd_core::{BatchedRequest, FsdError, LaunchPath, Variant};
use fsd_model::{generate_inputs, InputSpec};
use fsd_sparse::codec;
use std::collections::HashMap;

/// The deterministic digest of one completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDigest {
    /// Variant that executed (Auto resolves before execution).
    pub variant: Variant,
    /// Workers the run used.
    pub workers: u32,
    /// Launch path the run took (warm hit vs cold start) — part of the
    /// deterministic contract: replays must route requests identically.
    pub launch: LaunchPath,
    /// End-to-end virtual latency in microseconds.
    pub latency_us: u64,
    /// FNV-1a digest over every output batch's wire encoding.
    pub output_digest: u64,
    /// Request-local service billing (flow-scoped meters).
    pub sqs_api_calls: u64,
    pub sns_publish_requests: u64,
    pub s3_get_requests: u64,
    pub s3_put_requests: u64,
    /// Request-local Lambda invocations.
    pub invocations: u64,
}

/// Outcome of one accepted request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Scheduler sequence number.
    pub seq: u64,
    /// Index into the replayed trace.
    pub trace_index: usize,
    /// Priority class.
    pub priority: Priority,
    /// The run's digest, or the error's display string.
    pub result: Result<RunDigest, String>,
}

/// Everything a replay observed; two replays of the same trace against
/// identically configured schedulers must compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Seq numbers in admission order.
    pub admission_order: Vec<u64>,
    /// Priority class of each admission, aligned with `admission_order`.
    pub admitted_classes: Vec<Priority>,
    /// Trace indices rejected with backpressure, in arrival order.
    pub rejected: Vec<usize>,
    /// Per-request outcomes in admission order.
    pub outcomes: Vec<ReplayOutcome>,
    /// Final scheduler statistics.
    pub stats: SchedStatsSnapshot,
}

impl ReplayReport {
    /// Seq → trace-index admission pairs restricted to one class, in
    /// admission order (FIFO-within-class assertions).
    pub fn admissions_of(&self, class: Priority) -> Vec<u64> {
        self.admission_order
            .iter()
            .zip(&self.admitted_classes)
            .filter(|(_, c)| **c == class)
            .map(|(s, _)| *s)
            .collect()
    }
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn digest_report(report: &fsd_core::InferenceReport) -> RunDigest {
    let mut output_digest = 0xcbf2_9ce4_8422_2325u64;
    for out in &report.outputs {
        fnv1a(&mut output_digest, &codec::encode(out));
    }
    RunDigest {
        variant: report.variant,
        workers: report.workers,
        launch: report.launch,
        latency_us: report.latency.as_micros(),
        output_digest,
        sqs_api_calls: report.comm.sqs_api_calls,
        sns_publish_requests: report.comm.sns_publish_requests,
        s3_get_requests: report.comm.s3_get_requests,
        s3_put_requests: report.comm.s3_put_requests,
        invocations: report.lambda.invocations,
    }
}

/// Replays `trace` against `model` on a manual-dispatch scheduler.
///
/// # Panics
/// If the scheduler is not in manual dispatch mode with admission
/// recording (`SchedulerConfig::manual()`), if `model` is not registered,
/// or if an enqueue fails with anything but backpressure.
pub fn replay(sched: &Scheduler, model: &str, trace: &[Arrival]) -> ReplayReport {
    assert!(
        sched.is_manual(),
        "replay needs SchedulerConfig::manual(): admissions must only \
         happen on this driver thread"
    );
    let service = sched
        .service(model)
        // fsd_lint::allow(no-unwrap): replay is a test/bench driver — a
        // misconfigured trace must fail fast (documented under # Panics).
        .unwrap_or_else(|| panic!("model {model:?} not registered"))
        .clone();
    let neurons = service.dnn().spec().neurons;
    let global_cap = sched.global_cap();

    let mut tickets: HashMap<u64, (usize, Ticket)> = HashMap::new();
    let mut rejected = Vec::new();
    let mut outcomes = Vec::new();
    let mut harvested = 0usize;

    let harvest_next = |sched: &Scheduler,
                        tickets: &mut HashMap<u64, (usize, Ticket)>,
                        harvested: &mut usize,
                        outcomes: &mut Vec<ReplayOutcome>|
     -> bool {
        let log = sched.admission_log();
        if *harvested >= log.len() {
            return false;
        }
        let seq = log[*harvested];
        *harvested += 1;
        let (trace_index, ticket) = tickets.remove(&seq).expect("admitted ticket is held");
        let priority = ticket.priority();
        let result = ticket
            .wait()
            .map(|r| digest_report(&r))
            .map_err(|e| e.to_string());
        outcomes.push(ReplayOutcome {
            seq,
            trace_index,
            priority,
            result,
        });
        true
    };

    let mut i = 0usize;
    while i < trace.len() {
        // One arrival-instant group.
        let t = trace[i].at;
        let group_end = trace[i..]
            .iter()
            .position(|a| a.at != t)
            .map_or(trace.len(), |off| i + off);

        // The virtual gap before this instant lets the backlog drain.
        while sched.inflight() >= global_cap
            && harvest_next(sched, &mut tickets, &mut harvested, &mut outcomes)
        {}

        for (idx, a) in trace.iter().enumerate().take(group_end).skip(i) {
            let req = BatchedRequest {
                variant: a.variant,
                workers: a.workers,
                memory_mb: a.memory_mb,
                batches: vec![generate_inputs(
                    neurons,
                    &InputSpec::scaled(a.width, a.input_seed),
                )],
            };
            match sched.enqueue_at(model, a.priority, a.at, req) {
                Ok(ticket) => {
                    tickets.insert(ticket.seq(), (idx, ticket));
                }
                Err(FsdError::Overloaded { retry_after }) => {
                    assert!(
                        retry_after > fsd_comm::VirtualTime::ZERO,
                        "backpressure must carry a positive retry hint"
                    );
                    rejected.push(idx);
                }
                // fsd_lint::allow(no-unwrap): fail fast on non-backpressure
                // errors — documented under # Panics.
                Err(e) => panic!("replay enqueue failed: {e}"),
            }
        }
        sched.dispatch();
        i = group_end;
    }

    // Drain: keep admitting and harvesting until the system is empty.
    loop {
        sched.dispatch();
        if harvest_next(sched, &mut tickets, &mut harvested, &mut outcomes) {
            continue;
        }
        if sched.queued() == 0 && sched.inflight() == 0 {
            break;
        }
    }
    assert!(tickets.is_empty(), "every accepted ticket was harvested");

    let admission_order = sched.admission_log();
    let class_of: HashMap<u64, Priority> = outcomes.iter().map(|o| (o.seq, o.priority)).collect();
    let admitted_classes = admission_order.iter().map(|s| class_of[s]).collect();
    let mut stats = sched.stats();
    // The latency EWMAs fold completions in the order real threads
    // finished — advisory backoff signals, deliberately outside the
    // deterministic contract. Everything else in the report is a pure
    // function of (trace, config, model).
    stats.ewma_latency = fsd_comm::VirtualTime::ZERO;
    stats.ewma_cold_latency = fsd_comm::VirtualTime::ZERO;
    stats.ewma_warm_latency = fsd_comm::VirtualTime::ZERO;
    ReplayReport {
        admission_order,
        admitted_classes,
        rejected,
        outcomes,
        stats,
    }
}

/// Outcome of one accepted fleet request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetOutcome {
    /// Scheduler sequence number.
    pub seq: u64,
    /// Index into the replay's model list.
    pub model: usize,
    /// Index into the replayed trace.
    pub trace_index: usize,
    /// Stamped virtual arrival instant (µs) — with the per-run latency in
    /// the digest, everything a virtual-makespan model needs.
    pub arrival_us: u64,
    /// The run's digest, or the error's display string.
    pub result: Result<RunDigest, String>,
}

/// Everything a fleet replay observed (the multi-model analogue of
/// [`ReplayReport`]), plus the admission groups continuous batching
/// formed. Two replays of the same fleet trace against identically
/// configured schedulers must compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReplayReport {
    /// Seq numbers in admission order.
    pub admission_order: Vec<u64>,
    /// Seq numbers grouped per execution pass: a multi-member group is a
    /// coalition that ran as one tree pass.
    pub admission_groups: Vec<Vec<u64>>,
    /// Trace indices rejected with backpressure, in arrival order.
    pub rejected: Vec<usize>,
    /// Per-request outcomes in admission order.
    pub outcomes: Vec<FleetOutcome>,
    /// Final scheduler statistics.
    pub stats: SchedStatsSnapshot,
}

/// Replays a multi-model fleet trace against a manual-dispatch scheduler:
/// the driver protocol of [`replay`], with each arrival routed to
/// `models[a.model]` and stamped with its virtual arrival instant
/// ([`Scheduler::enqueue_at`]) so continuous batching coalesces as a pure
/// function of the trace.
///
/// # Panics
/// If the scheduler is not in manual dispatch mode with admission
/// recording, if a trace entry's model index is out of range or the name
/// is not registered, or if an enqueue fails with anything but
/// backpressure.
pub fn replay_fleet(
    sched: &Scheduler,
    models: &[&str],
    trace: &[FleetArrival],
) -> FleetReplayReport {
    assert!(
        sched.is_manual(),
        "replay_fleet needs SchedulerConfig::manual(): admissions must \
         only happen on this driver thread"
    );
    let neurons: Vec<usize> = models
        .iter()
        .map(|m| {
            sched
                .service(m)
                // fsd_lint::allow(no-unwrap): replay_fleet is a test/bench
                // driver — a misconfigured fleet must fail fast
                // (documented under # Panics).
                .unwrap_or_else(|| panic!("model {m:?} not registered"))
                .dnn()
                .spec()
                .neurons
        })
        .collect();
    let global_cap = sched.global_cap();

    let mut tickets: HashMap<u64, (usize, FleetArrival, Ticket)> = HashMap::new();
    let mut rejected = Vec::new();
    let mut outcomes = Vec::new();
    let mut harvested = 0usize;

    let harvest_next = |sched: &Scheduler,
                        tickets: &mut HashMap<u64, (usize, FleetArrival, Ticket)>,
                        harvested: &mut usize,
                        outcomes: &mut Vec<FleetOutcome>|
     -> bool {
        let log = sched.admission_log();
        if *harvested >= log.len() {
            return false;
        }
        let seq = log[*harvested];
        *harvested += 1;
        let (trace_index, a, ticket) = tickets.remove(&seq).expect("admitted ticket is held");
        let result = ticket
            .wait()
            .map(|r| digest_report(&r))
            .map_err(|e| e.to_string());
        outcomes.push(FleetOutcome {
            seq,
            model: a.model,
            trace_index,
            arrival_us: a.arrival.at.as_micros(),
            result,
        });
        true
    };

    let mut i = 0usize;
    while i < trace.len() {
        // One arrival-instant group.
        let t = trace[i].arrival.at;
        let group_end = trace[i..]
            .iter()
            .position(|a| a.arrival.at != t)
            .map_or(trace.len(), |off| i + off);

        // The virtual gap before this instant lets the backlog drain.
        while sched.inflight() >= global_cap
            && harvest_next(sched, &mut tickets, &mut harvested, &mut outcomes)
        {}

        for (idx, fa) in trace.iter().enumerate().take(group_end).skip(i) {
            let a = &fa.arrival;
            let req = BatchedRequest {
                variant: a.variant,
                workers: a.workers,
                memory_mb: a.memory_mb,
                batches: vec![generate_inputs(
                    neurons[fa.model],
                    &InputSpec::scaled(a.width, a.input_seed),
                )],
            };
            match sched.enqueue_at(models[fa.model], a.priority, a.at, req) {
                Ok(ticket) => {
                    tickets.insert(ticket.seq(), (idx, fa.clone(), ticket));
                }
                Err(FsdError::Overloaded { retry_after }) => {
                    assert!(
                        retry_after > fsd_comm::VirtualTime::ZERO,
                        "backpressure must carry a positive retry hint"
                    );
                    rejected.push(idx);
                }
                // fsd_lint::allow(no-unwrap): fail fast on non-backpressure
                // errors — documented under # Panics.
                Err(e) => panic!("replay_fleet enqueue failed: {e}"),
            }
        }
        sched.dispatch();
        i = group_end;
    }

    // Drain: keep admitting and harvesting until the system is empty.
    loop {
        sched.dispatch();
        if harvest_next(sched, &mut tickets, &mut harvested, &mut outcomes) {
            continue;
        }
        if sched.queued() == 0 && sched.inflight() == 0 {
            break;
        }
    }
    assert!(tickets.is_empty(), "every accepted ticket was harvested");

    let mut stats = sched.stats();
    // Same carve-out as `replay`: the latency EWMAs depend on thread
    // finish order and sit outside the deterministic contract.
    stats.ewma_latency = fsd_comm::VirtualTime::ZERO;
    stats.ewma_cold_latency = fsd_comm::VirtualTime::ZERO;
    stats.ewma_warm_latency = fsd_comm::VirtualTime::ZERO;
    FleetReplayReport {
        admission_order: sched.admission_log(),
        admission_groups: sched.admission_groups(),
        rejected,
        outcomes,
        stats,
    }
}
