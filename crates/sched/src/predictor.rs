//! Trace-driven pre-warming: mining arrival history into warm-pool
//! decisions.
//!
//! The warm pool (PR 3) is purely reactive — a tree only parks after some
//! request has already paid its cold start. λScale-style serving instead
//! scales *proactively*: observed arrival patterns drive pre-warm and
//! evict decisions ahead of the traffic that needs them. This module is
//! that policy, deliberately separated from mechanism:
//!
//! * the **[`Predictor`]** consumes the scheduler's per-request arrival
//!   shapes (`(variant, P, memory)` — [`fsd_core::TreeKey`]) and maintains
//!   a **sliding window** over the most recent arrivals plus a
//!   **last-seen** index per shape;
//! * **burst detection**: a shape with at least
//!   [`PredictorConfig::burst_threshold`] arrivals inside the window is
//!   mid-burst, and its warm target is the full in-window count (the
//!   observed burst depth). Below the threshold a single warm tree covers
//!   the trickle;
//! * **quiescence**: a shape unseen for [`PredictorConfig::quiet_after`]
//!   arrivals is predicted dead — the decision set evicts its warm trees,
//!   so quiescent traffic converges the pool back to zero pre-warms;
//! * **budgeting**: warm targets are clamped so their sum never exceeds
//!   [`PredictorConfig::max_warm`], allocated in canonical shape order so
//!   the clamp itself is deterministic.
//!
//! **Determinism.** The predictor's state advances only through
//! [`Predictor::observe`], and [`Predictor::decisions`] is a pure
//! function of that state — the same arrival sequence always yields the
//! same decision sequence (the property the proptests pin down). The
//! scheduler *applies* decisions idempotently (pre-warm up to the target,
//! evict what is already gone), so re-applying a standing decision set on
//! a drain tick never perturbs a replay.

use fsd_core::TreeKey;
use std::collections::{BTreeMap, VecDeque};

/// Tuning knobs for the arrival-history miner. The defaults pair with
/// `ServiceBuilder::auto_warm_pool(4, 2)` — four distinct shapes bursting
/// two deep, the envelope of the seeded `trace::bursty` workload.
#[derive(Debug, Clone, Copy)]
pub struct PredictorConfig {
    /// Sliding-window length, in arrivals (across all shapes).
    pub window: usize,
    /// In-window arrivals of one shape that constitute a burst; below
    /// this, at most one tree is kept warm for the shape.
    pub burst_threshold: usize,
    /// Upper bound on the summed warm targets across shapes (keep it at
    /// or below the pool's `max_trees`; excess pre-warms would only churn
    /// the pool's LRU policy).
    pub max_warm: usize,
    /// Arrivals without a shape after which that shape's warm trees are
    /// evicted.
    pub quiet_after: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            window: 16,
            burst_threshold: 2,
            max_warm: 8,
            quiet_after: 48,
        }
    }
}

impl PredictorConfig {
    /// Sets the sliding-window length (clamped to ≥ 1).
    pub fn window(mut self, window: usize) -> PredictorConfig {
        self.window = window.max(1);
        self
    }

    /// Sets the burst threshold (clamped to ≥ 1).
    pub fn burst_threshold(mut self, threshold: usize) -> PredictorConfig {
        self.burst_threshold = threshold.max(1);
        self
    }

    /// Sets the global warm-target budget.
    pub fn max_warm(mut self, max_warm: usize) -> PredictorConfig {
        self.max_warm = max_warm;
        self
    }

    /// Sets the quiescence horizon (clamped to ≥ 1 arrival).
    pub fn quiet_after(mut self, quiet_after: u64) -> PredictorConfig {
        self.quiet_after = quiet_after.max(1);
        self
    }
}

/// One pool action the predictor wants taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrewarmDecision {
    /// Keep `target` trees of `shape` warm (pre-warm the difference if
    /// fewer are parked; never tear down because of a *lower* target —
    /// the pool's own TTL/LRU policies shrink gently).
    Warm {
        /// The request shape to keep warm.
        shape: TreeKey,
        /// How many parked trees the shape should have ready.
        target: usize,
    },
    /// Evict every parked tree of `shape` (traffic went quiet).
    Evict {
        /// The request shape to evict.
        shape: TreeKey,
    },
}

/// The arrival-history miner. One per `(scheduler, model)`; all state is
/// local, so the scheduler wraps it in a mutex and drives it from its
/// intake path.
pub struct Predictor {
    cfg: PredictorConfig,
    /// Total arrivals observed (the predictor's event clock).
    seq: u64,
    /// The most recent `cfg.window` arrivals; `None` marks a request that
    /// runs no tree (Serial) but still advances the window.
    window: VecDeque<Option<TreeKey>>,
    /// Last arrival seq per shape ever seen (bounded by distinct shapes).
    last_seen: BTreeMap<TreeKey, u64>,
}

impl Predictor {
    /// A predictor with no history.
    pub fn new(cfg: PredictorConfig) -> Predictor {
        Predictor {
            cfg: PredictorConfig {
                window: cfg.window.max(1),
                burst_threshold: cfg.burst_threshold.max(1),
                max_warm: cfg.max_warm,
                quiet_after: cfg.quiet_after.max(1),
            },
            seq: 0,
            window: VecDeque::new(),
            last_seen: BTreeMap::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> PredictorConfig {
        self.cfg
    }

    /// Arrivals observed so far.
    pub fn observed(&self) -> u64 {
        self.seq
    }

    /// Records one arrival (`None` for requests that run no worker tree,
    /// e.g. Serial — they advance the event clock without competing for
    /// warm capacity) and returns the updated decision set.
    pub fn observe(&mut self, shape: Option<TreeKey>) -> Vec<PrewarmDecision> {
        self.seq += 1;
        self.window.push_back(shape);
        while self.window.len() > self.cfg.window {
            self.window.pop_front();
        }
        if let Some(shape) = shape {
            self.last_seen.insert(shape, self.seq);
        }
        self.decisions()
    }

    /// Whether `shape` is past the quiescence horizon.
    fn is_quiet(&self, shape: &TreeKey) -> bool {
        self.last_seen
            .get(shape)
            .is_none_or(|&at| self.seq.saturating_sub(at) >= self.cfg.quiet_after)
    }

    /// The current decision set — a pure function of the observed history:
    /// evictions for every quiet shape ever seen (standing until the shape
    /// re-arrives; applying them is idempotent), then warm targets in
    /// canonical shape order, clamped to the `max_warm` budget. `last_seen`
    /// is bounded by the distinct-shape population, never by trace length.
    pub fn decisions(&self) -> Vec<PrewarmDecision> {
        let mut counts: BTreeMap<TreeKey, usize> = BTreeMap::new();
        for shape in self.window.iter().flatten() {
            *counts.entry(*shape).or_insert(0) += 1;
        }
        let mut out = Vec::new();
        for shape in self.last_seen.keys() {
            if self.is_quiet(shape) {
                out.push(PrewarmDecision::Evict { shape: *shape });
            }
        }
        let mut budget = self.cfg.max_warm;
        for (shape, count) in &counts {
            if self.is_quiet(shape) {
                continue;
            }
            let want = if *count >= self.cfg.burst_threshold {
                *count
            } else {
                1
            };
            let target = want.min(budget);
            budget -= target;
            if target > 0 {
                out.push(PrewarmDecision::Warm {
                    shape: *shape,
                    target,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsd_core::Variant;

    fn shape(variant: Variant, workers: u32) -> TreeKey {
        TreeKey {
            variant,
            workers,
            memory_mb: 1769,
        }
    }

    fn warm_target(decisions: &[PrewarmDecision], s: TreeKey) -> Option<usize> {
        decisions.iter().find_map(|d| match d {
            PrewarmDecision::Warm { shape, target } if *shape == s => Some(*target),
            _ => None,
        })
    }

    #[test]
    fn first_arrival_warms_one_tree() {
        let mut p = Predictor::new(PredictorConfig::default());
        let s = shape(Variant::Queue, 2);
        let d = p.observe(Some(s));
        assert_eq!(
            d,
            vec![PrewarmDecision::Warm {
                shape: s,
                target: 1
            }]
        );
    }

    #[test]
    fn burst_raises_the_target_to_observed_depth() {
        let mut p = Predictor::new(PredictorConfig::default().burst_threshold(2));
        let s = shape(Variant::Queue, 1);
        p.observe(Some(s));
        p.observe(Some(s));
        let d = p.observe(Some(s));
        assert_eq!(warm_target(&d, s), Some(3), "three in-window arrivals");
    }

    #[test]
    fn serial_arrivals_advance_the_clock_but_claim_no_capacity() {
        let mut p = Predictor::new(PredictorConfig::default());
        let d = p.observe(None);
        assert!(d.is_empty(), "no shape, no decision: {d:?}");
        assert_eq!(p.observed(), 1);
    }

    #[test]
    fn targets_never_exceed_the_budget() {
        let mut p = Predictor::new(PredictorConfig::default().max_warm(3).burst_threshold(1));
        let a = shape(Variant::Queue, 1);
        let b = shape(Variant::Queue, 2);
        let c = shape(Variant::Object, 1);
        let mut last = Vec::new();
        for _ in 0..4 {
            for s in [a, b, c] {
                last = p.observe(Some(s));
            }
        }
        let total: usize = last
            .iter()
            .map(|d| match d {
                PrewarmDecision::Warm { target, .. } => *target,
                PrewarmDecision::Evict { .. } => 0,
            })
            .sum();
        assert!(total <= 3, "budget 3 exceeded: {last:?}");
        assert!(total > 0, "live shapes must get some budget");
    }

    #[test]
    fn quiet_shapes_are_evicted_while_still_windowed() {
        // window 8 and quiet_after 8: a shape 8 arrivals quiet is retired
        // exactly as its last window slot expires, so the eviction is
        // emitted while the shape is still nameable.
        let cfg = PredictorConfig::default()
            .window(8)
            .quiet_after(8)
            .burst_threshold(2);
        let mut p = Predictor::new(cfg);
        let a = shape(Variant::Queue, 1);
        let b = shape(Variant::Object, 2);
        p.observe(Some(a));
        let mut saw_eviction = false;
        for _ in 0..8 {
            let d = p.observe(Some(b));
            saw_eviction |= d.contains(&PrewarmDecision::Evict { shape: a });
            if saw_eviction {
                break;
            }
        }
        assert!(saw_eviction, "shape a must be evicted once quiet");
        // After retirement, no decision mentions `a` and targets for `b`
        // remain — quiescent traffic converges to only the live shape.
        let d = p.decisions();
        assert!(warm_target(&d, a).is_none());
        assert!(warm_target(&d, b).is_some());
    }

    #[test]
    fn decisions_are_a_pure_function_of_history() {
        let cfg = PredictorConfig::default();
        let seq = [
            Some(shape(Variant::Queue, 1)),
            None,
            Some(shape(Variant::Object, 2)),
            Some(shape(Variant::Hybrid, 2)),
            Some(shape(Variant::Queue, 1)),
            None,
            Some(shape(Variant::Hybrid, 2)),
            Some(shape(Variant::Queue, 2)),
        ];
        let mut p1 = Predictor::new(cfg);
        let mut p2 = Predictor::new(cfg);
        for s in seq {
            assert_eq!(p1.observe(s), p2.observe(s));
        }
        assert_eq!(p1.decisions(), p2.decisions());
    }
}
