//! Sporadic inference workloads (the paper's §VI-C motivation).
//!
//! ```text
//! cargo run --release --example sporadic_workload
//! ```
//!
//! Simulates a day of irregular queries over models of different sizes —
//! the e-commerce / trading / monitoring setting where neither an
//! always-on server nor a single-instance endpoint fits. For each query
//! the engine picks the recommended variant, runs it, and the example
//! totals the day's bill against an always-on server.

use fsd_inference::baselines::C5_12XLARGE;
use fsd_inference::core::{
    recommend_variant, FsdService, InferenceRequest, ServiceBuilder, Variant, WorkloadProfile,
};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // Three deployed models of different sizes share the region.
    let sizes = [256usize, 1024, 2048];
    let services: Vec<FsdService> = sizes
        .iter()
        .map(|&n| {
            let dnn = Arc::new(generate_dnn(&DnnSpec::scaled(n, 1)));
            ServiceBuilder::new(dnn).deterministic(n as u64).build()
        })
        .collect();

    let queries = 12; // a sporadic trickle over the day
    let mut total_cost = 0.0;
    let mut total_latency_ms = 0.0;
    println!(
        "simulating {queries} sporadic queries across {} models…\n",
        sizes.len()
    );
    for q in 0..queries {
        let which = rng.gen_range(0..sizes.len());
        let n = sizes[which];
        let batch = *[32usize, 64, 128][rng.gen_range(0..3)..][..1]
            .first()
            .expect("non-empty");
        let inputs = generate_inputs(n, &InputSpec::scaled(batch, q as u64));
        let service = &services[which];

        // Per-query variant selection (Section IV-C recommendations).
        let profile = WorkloadProfile {
            model_bytes: service.dnn().mem_bytes() * 40, // pretend real-scale weights
            workers: 4,
            bytes_per_pair_layer: inputs.nnz() * 8 / 16,
        };
        let variant = if n == sizes[0] {
            Variant::Serial
        } else {
            recommend_variant(&profile)
        };
        let report = service
            .submit(&InferenceRequest {
                variant,
                workers: 4,
                memory_mb: 1769,
                inputs,
            })
            .expect("query runs");
        total_cost += report.cost_actual.total();
        total_latency_ms += report.latency.as_millis_f64();
        println!(
            "query {q:>2}: N={n:<5} batch={batch:<4} {:<16} latency {:>8.1} ms  cost ${:.6}",
            report.variant.to_string(),
            report.latency.as_millis_f64(),
            report.cost_actual.total()
        );
    }
    let always_on_daily = 2.0 * 24.0 * C5_12XLARGE.hourly_usd;
    println!("\nday total: ${total_cost:.4} (FSD, pay-per-query)");
    println!(
        "vs ${always_on_daily:.2}/day for 2x always-on {}",
        C5_12XLARGE.name
    );
    println!(
        "avg query latency: {:.1} ms",
        total_latency_ms / queries as f64
    );
    assert!(total_cost < always_on_daily);
}
