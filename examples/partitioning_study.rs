//! Partitioning quality study: HGP-DNN vs random vs block.
//!
//! ```text
//! cargo run --release --example partitioning_study
//! ```
//!
//! Builds the communication hypergraph of a sparse DNN and partitions it
//! with the three schemes, reporting connectivity-1 cost (≡ rows shipped
//! between workers per inference), balance, and the resulting send-map
//! fan-out. This is the offline step FSD-Inference performs once per
//! (model, P) before any requests arrive.

use fsd_inference::model::{generate_dnn, DnnSpec};
use fsd_inference::partition::{partition_model, CommPlan, Hypergraph, PartitionScheme};

fn main() {
    let spec = DnnSpec::scaled(2048, 5);
    let dnn = generate_dnn(&spec);
    let h = Hypergraph::from_dnn(&dnn);
    println!(
        "hypergraph: {} vertices, {} nets, {} pins",
        h.n_vertices(),
        h.n_nets(),
        h.n_pins()
    );

    let p = 8;
    println!(
        "\n{:>8}  {:>12}  {:>10}  {:>12}  {:>10}",
        "scheme", "cut (rows)", "imbalance", "row sends", "pairs"
    );
    let mut costs = Vec::new();
    for (name, scheme) in [
        ("HGP-DNN", PartitionScheme::Hgp),
        ("Block", PartitionScheme::Block),
        ("Random", PartitionScheme::Random),
    ] {
        let part = partition_model(&dnn, p, scheme, 5);
        let cost = h.connectivity_cost(part.assignment(), p);
        let plan = CommPlan::build(&dnn, &part);
        println!(
            "{name:>8}  {cost:>12}  {:>9.1}%  {:>12}  {:>10}",
            part.imbalance(h.vertex_weights()) * 100.0,
            plan.total_row_sends(),
            plan.total_pairs()
        );
        // The plan's row sends are exactly the hypergraph connectivity cost.
        assert_eq!(cost, plan.total_row_sends());
        costs.push(cost);
    }
    println!(
        "\nHGP cuts {:.1}x less than random (the paper's Table III shows ~9x at N=16384, P=42)",
        costs[2] as f64 / costs[0] as f64
    );
    assert!(
        costs[0] <= costs[1],
        "HGP should never lose to block (multi-start)"
    );
    assert!(costs[1] < costs[2], "block should beat random");
}
