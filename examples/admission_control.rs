//! Admission control: serve a bursty mix through the scheduler.
//!
//! ```text
//! cargo run --release --example admission_control
//! ```
//!
//! Wraps an [`FsdService`] in the `fsd-sched` [`Scheduler`]: all intake
//! goes through `enqueue` → `Ticket` → `wait`, with two priority classes
//! drained by weighted FIFO, a global in-flight cap, a per-model cap
//! derived from the paper's §IV-C channel-load rules, and **bounded**
//! queues that reject with `FsdError::Overloaded { retry_after }` instead
//! of buffering without bound.

use fsd_inference::core::{BatchedRequest, FsdError, FsdService, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_inference::sched::{Priority, Scheduler, SchedulerConfig, Ticket};
use std::sync::Arc;

fn main() {
    // 1. The model and the serving front end (as in `quickstart`).
    let spec = DnnSpec::scaled(512, 11);
    let dnn = Arc::new(generate_dnn(&spec));
    let service: Arc<FsdService> = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(11)
            .prewarm(2)
            .prewarm(4)
            .build(),
    );

    // 2. The admission-controlled scheduler in front of it: at most 3
    //    requests execute at once, interactive traffic gets a 3:1 share
    //    over batch, and each class buffers at most 4 waiting requests.
    let mut cfg = SchedulerConfig::default()
        .global_cap(3)
        .queue_capacity(4)
        .weights(3, 1);
    cfg.record_admissions = true; // so we can print the admission order
    let sched = Scheduler::wrap(service.clone(), cfg);
    println!(
        "scheduler: global cap {}, per-model cap {} (derived from §IV-C), queues of 4",
        sched.global_cap(),
        sched.model_cap("default").unwrap(),
    );

    // 3. A burst: 10 requests arrive back to back, mixed priorities and
    //    sizes, more than the bounded queues can hold.
    let mut tickets: Vec<(usize, Ticket)> = Vec::new();
    for i in 0..10 {
        let priority = if i % 3 == 2 {
            Priority::Batch
        } else {
            Priority::Interactive
        };
        let request = BatchedRequest {
            variant: Variant::Auto,
            workers: 2 + (i % 2) as u32,
            memory_mb: 1769,
            batches: vec![generate_inputs(
                spec.neurons,
                &InputSpec::scaled(16 + 8 * i, 11 + i as u64),
            )],
        };
        match sched.enqueue_default(priority, request) {
            Ok(t) => {
                println!("request {i:2} ({priority}): accepted as seq {}", t.seq());
                tickets.push((i, t));
            }
            Err(FsdError::Overloaded { retry_after }) => {
                // Explicit backpressure: the client is told how long the
                // current backlog needs to drain a slot (virtual time).
                println!("request {i:2} ({priority}): REJECTED — retry after {retry_after}");
            }
            Err(e) => panic!("enqueue failed: {e}"),
        }
    }

    // 4. Harvest. Every accepted request completes; priorities shaped who
    //    went first, the caps bounded how many ran at once.
    for (i, ticket) in tickets {
        let report = ticket.wait().expect("accepted request runs");
        println!(
            "request {i:2}: {} P={} — {} virtual latency, {} samples",
            report.variant, report.workers, report.latency, report.samples,
        );
    }

    // 5. Graceful shutdown: stop intake, wait for the backlog.
    sched.shutdown();
    sched.drain();
    let stats = sched.stats();
    println!(
        "admitted {:?} (interactive, batch) in order {:?}",
        stats.admitted,
        sched.admission_log(),
    );
    println!(
        "rejected {:?}, peak concurrency {}/{}",
        stats.rejected,
        stats.max_inflight,
        sched.global_cap(),
    );
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.inflight, 0);
}
