//! Warm worker-tree pool: take cold starts off the hot path.
//!
//! ```text
//! cargo run --release --example warm_pool
//! ```
//!
//! Every request of a pool-less service pays the full launch bill —
//! coordinator invoke + cold start, `launch_rounds(P, b)` hierarchical
//! tree invocations, per-worker weight loads. With
//! `ServiceBuilder::warm_pool(max, ttl)`, the tree a request launches
//! stays parked (weights resident, instances in a serve loop) and the
//! next request of the same `(variant, P, memory)` shape is routed
//! straight into it: one control-plane hop instead of the whole launch.
//! `InferenceReport::launch` labels the path each request took.

use fsd_inference::core::{InferenceRequest, LaunchPath, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use std::sync::Arc;

fn main() {
    let spec = DnnSpec::scaled(512, 7);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(64, 7));
    let expected = dnn.serial_inference(&inputs);

    // Up to 4 trees stay warm; a tree that sits out 64 subsequent
    // distributed requests is evicted. `prewarm_tree` parks one at build
    // time, so even the very first matching request is a warm hit.
    let service = ServiceBuilder::new(dnn)
        .deterministic(7)
        .warm_pool(4, 64)
        .prewarm_tree(Variant::Queue, 4, 1769)
        .build();

    let req = InferenceRequest {
        variant: Variant::Queue,
        workers: 4,
        memory_mb: 1769,
        inputs,
    };
    println!("request           path        latency    invocations");
    println!("------------------------------------------------------");
    for i in 0..4 {
        let report = service.submit(&req).expect("request runs");
        assert_eq!(report.first_output(), &expected);
        println!(
            "#{i}                {:<10}  {:>9}  {:>11}",
            report.launch.to_string(),
            report.latency.to_string(),
            report.lambda.invocations,
        );
    }

    // Re-staging weights? Invalidate: parked trees are generation-tagged
    // and never serve requests for newer artifacts.
    let dropped = service.invalidate_warm_trees();
    let cold = service.submit(&req).expect("post-invalidate run");
    assert_eq!(cold.launch, LaunchPath::ColdStart);
    println!(
        "\ninvalidated {dropped} warm tree(s); next request was {} at {}",
        cold.launch, cold.latency
    );
    let stats = service.warm_pool_stats().expect("pool enabled");
    println!(
        "pool: {} hits / {} misses, {} created, {} idle",
        stats.hits, stats.misses, stats.created, stats.idle
    );
}
