//! Predictive pre-warming: mine arrival history, pre-warm ahead of bursts.
//!
//! ```text
//! cargo run --release --example predictive_prewarm
//! ```
//!
//! The warm pool alone is reactive — a tree only parks after some request
//! already paid its cold start. With `SchedulerConfig::predictive`, every
//! accepted arrival feeds a per-model predictor (sliding-window rate +
//! burst detection per `(variant, P, memory)` shape) whose decisions
//! pre-warm trees *before* admission runs and evict shapes whose traffic
//! went quiet. The same seeded bursty trace is replayed below through a
//! reactive-only and a predictive scheduler; watch the cold starts drop.

use fsd_inference::core::ServiceBuilder;
use fsd_inference::model::{generate_dnn, DnnSpec};
use fsd_inference::sched::harness::replay;
use fsd_inference::sched::{trace, PredictorConfig, Scheduler, SchedulerBuilder, SchedulerConfig};
use std::sync::Arc;

const SEED: u64 = 7;

fn fresh_scheduler(predictive: bool) -> Scheduler {
    let spec = DnnSpec {
        neurons: 96,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: SEED,
    };
    let service = Arc::new(
        ServiceBuilder::new(Arc::new(generate_dnn(&spec)))
            .deterministic(SEED)
            .prewarm(1)
            .prewarm(2)
            // Pool sized by the same formula the predictor's targets
            // assume: 4 shapes bursting up to 2 deep.
            .auto_warm_pool(4, 2)
            .build(),
    );
    let mut cfg = SchedulerConfig::default()
        .global_cap(1)
        .queue_capacity(64)
        .manual();
    if predictive {
        cfg = cfg.predictive(PredictorConfig::default().window(8).max_warm(8));
    }
    SchedulerBuilder::new(cfg).model("m", service).build()
}

fn main() {
    let arrivals = trace::bursty(3, 8, 400_000, SEED);
    println!("mode        warm hits  cold starts  prewarmed  evicted  mean latency");
    println!("----------------------------------------------------------------------");
    for predictive in [false, true] {
        let sched = fresh_scheduler(predictive);
        let report = replay(&sched, "m", &arrivals);
        let (sum_us, n) = report
            .outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok())
            .fold((0u64, 0u64), |(s, n), d| (s + d.latency_us, n + 1));
        println!(
            "{:<10}  {:>9}  {:>11}  {:>9}  {:>7}  {:>9.1}ms",
            if predictive { "predictive" } else { "reactive" },
            report.stats.warm_hits,
            report.stats.cold_starts,
            report.stats.prewarmed,
            report.stats.predictor_evicted,
            sum_us as f64 / n.max(1) as f64 / 1000.0,
        );
    }
    println!(
        "\nThe predictor pre-warms each shape at its first in-burst arrival —\n\
         before admission — so even first-of-shape requests land warm; the\n\
         reactive pool pays one cold start per shape before anything parks."
    );
}
