//! Queue vs object-storage channels on one workload.
//!
//! ```text
//! cargo run --release --example channel_comparison
//! ```
//!
//! Runs the same model/batch through FSD-Inf-Queue and FSD-Inf-Object at
//! increasing parallelism, printing the latency/cost trade-off the paper's
//! design recommendations are built on — and demonstrating that both
//! channels (and the serial fallback) return identical results.

use fsd_inference::core::{InferenceRequest, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use std::sync::Arc;

fn main() {
    let spec = DnnSpec::scaled(1024, 3);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(128, 3));
    let expected = dnn.serial_inference(&inputs);
    let service = ServiceBuilder::new(dnn).deterministic(3).build();

    println!(
        "{:>3}  {:>14}  {:>12}  {:>14}  {:>12}",
        "P", "queue ms", "queue $", "object ms", "object $"
    );
    for p in [2u32, 4, 8] {
        let queue = service
            .submit(&InferenceRequest {
                variant: Variant::Queue,
                workers: p,
                memory_mb: 1769,
                inputs: inputs.clone(),
            })
            .expect("queue runs");
        let object = service
            .submit(&InferenceRequest {
                variant: Variant::Object,
                workers: p,
                memory_mb: 1769,
                inputs: inputs.clone(),
            })
            .expect("object runs");
        assert_eq!(queue.first_output(), &expected);
        assert_eq!(object.first_output(), &expected);
        println!(
            "{p:>3}  {:>14.1}  {:>12.6}  {:>14.1}  {:>12.6}",
            queue.latency.as_millis_f64(),
            queue.cost_actual.total(),
            object.latency.as_millis_f64(),
            object.cost_actual.total()
        );
    }

    let serial = service
        .submit(&InferenceRequest {
            variant: Variant::Serial,
            workers: 1,
            memory_mb: 1769,
            inputs,
        })
        .expect("serial runs");
    assert_eq!(serial.first_output(), &expected);
    println!(
        "\nserial reference: {:.1} ms, ${:.6} — all three variants agree bit-for-bit ✓",
        serial.latency.as_millis_f64(),
        serial.cost_actual.total()
    );
    println!("\npattern to expect: object-storage cost grows ~linearly with P,");
    println!("queue cost grows much more slowly — the paper's §IV-C recommendation.");
}
