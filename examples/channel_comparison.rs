//! Queue vs object vs hybrid vs direct channels on one workload.
//!
//! ```text
//! cargo run --release --example channel_comparison
//! ```
//!
//! Runs the same model/batch through FSD-Inf-Queue, FSD-Inf-Object,
//! FSD-Inf-Hybrid and FSD-Inf-Direct at increasing parallelism, printing
//! the latency/cost trade-off the paper's design recommendations are
//! built on — and demonstrating that all channels (and the serial
//! fallback) return identical results.

use fsd_inference::core::{InferenceRequest, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use std::sync::Arc;

fn main() {
    let spec = DnnSpec::scaled(1024, 3);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(128, 3));
    let expected = dnn.serial_inference(&inputs);
    let service = ServiceBuilder::new(dnn).deterministic(3).build();

    println!(
        "{:>3}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
        "P",
        "queue ms",
        "queue $",
        "objct ms",
        "objct $",
        "hybrd ms",
        "hybrd $",
        "direct ms",
        "direct $"
    );
    for p in [2u32, 4, 8] {
        let run = |variant: Variant| {
            let report = service
                .submit(&InferenceRequest {
                    variant,
                    workers: p,
                    memory_mb: 1769,
                    inputs: inputs.clone(),
                })
                .unwrap_or_else(|e| panic!("{variant} runs: {e}"));
            assert_eq!(report.first_output(), &expected);
            report
        };
        let queue = run(Variant::Queue);
        let object = run(Variant::Object);
        let hybrid = run(Variant::Hybrid);
        let direct = run(Variant::Direct);
        println!(
            "{p:>3}  {:>9.1}  {:>9.6}  {:>9.1}  {:>9.6}  {:>9.1}  {:>9.6}  {:>9.1}  {:>9.6}",
            queue.latency.as_millis_f64(),
            queue.cost_actual.total(),
            object.latency.as_millis_f64(),
            object.cost_actual.total(),
            hybrid.latency.as_millis_f64(),
            hybrid.cost_actual.total(),
            direct.latency.as_millis_f64(),
            direct.cost_actual.total()
        );
    }

    let serial = service
        .submit(&InferenceRequest {
            variant: Variant::Serial,
            workers: 1,
            memory_mb: 1769,
            inputs,
        })
        .expect("serial runs");
    assert_eq!(serial.first_output(), &expected);
    println!(
        "\nserial reference: {:.1} ms, ${:.6} — all five variants agree bit-for-bit ✓",
        serial.latency.as_millis_f64(),
        serial.cost_actual.total()
    );
    println!("\npattern to expect: object-storage cost grows ~linearly with P, queue");
    println!("cost grows much more slowly, hybrid tracks queue until payloads cross");
    println!("the spill threshold, and direct pays only the one-time hole-punch");
    println!("handshakes — zero per-message API cost, the paper's §IV-C bands");
    println!("extended with the FMI direct-exchange transport.");
}
