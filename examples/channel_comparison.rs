//! Queue vs object vs hybrid channels on one workload.
//!
//! ```text
//! cargo run --release --example channel_comparison
//! ```
//!
//! Runs the same model/batch through FSD-Inf-Queue, FSD-Inf-Object and
//! FSD-Inf-Hybrid at increasing parallelism, printing the latency/cost
//! trade-off the paper's design recommendations are built on — and
//! demonstrating that all channels (and the serial fallback) return
//! identical results.

use fsd_inference::core::{InferenceRequest, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use std::sync::Arc;

fn main() {
    let spec = DnnSpec::scaled(1024, 3);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(128, 3));
    let expected = dnn.serial_inference(&inputs);
    let service = ServiceBuilder::new(dnn).deterministic(3).build();

    println!(
        "{:>3}  {:>10}  {:>10}  {:>11}  {:>11}  {:>11}  {:>11}",
        "P", "queue ms", "queue $", "object ms", "object $", "hybrid ms", "hybrid $"
    );
    for p in [2u32, 4, 8] {
        let run = |variant: Variant| {
            let report = service
                .submit(&InferenceRequest {
                    variant,
                    workers: p,
                    memory_mb: 1769,
                    inputs: inputs.clone(),
                })
                .unwrap_or_else(|e| panic!("{variant} runs: {e}"));
            assert_eq!(report.first_output(), &expected);
            report
        };
        let queue = run(Variant::Queue);
        let object = run(Variant::Object);
        let hybrid = run(Variant::Hybrid);
        println!(
            "{p:>3}  {:>10.1}  {:>10.6}  {:>11.1}  {:>11.6}  {:>11.1}  {:>11.6}",
            queue.latency.as_millis_f64(),
            queue.cost_actual.total(),
            object.latency.as_millis_f64(),
            object.cost_actual.total(),
            hybrid.latency.as_millis_f64(),
            hybrid.cost_actual.total()
        );
    }

    let serial = service
        .submit(&InferenceRequest {
            variant: Variant::Serial,
            workers: 1,
            memory_mb: 1769,
            inputs,
        })
        .expect("serial runs");
    assert_eq!(serial.first_output(), &expected);
    println!(
        "\nserial reference: {:.1} ms, ${:.6} — all four variants agree bit-for-bit ✓",
        serial.latency.as_millis_f64(),
        serial.cost_actual.total()
    );
    println!("\npattern to expect: object-storage cost grows ~linearly with P, queue");
    println!("cost grows much more slowly, and hybrid tracks queue until payloads");
    println!("cross the spill threshold — the paper's §IV-C recommendation.");
}
