//! Quickstart: run fully serverless distributed inference end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a sparse DNN (Graph Challenge-style), builds an [`FsdService`]
//! over a simulated cloud region, and submits a request with
//! `Variant::Auto` — the service applies the paper's §IV-C design
//! recommendations per request (model fit → Serial; per-pair payload
//! volume → Queue vs Object) and runs the variant it picked. The result is
//! checked against the single-node ground truth.

use fsd_inference::core::{FsdService, InferenceRequest, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use std::sync::Arc;

fn main() {
    // 1. A "trained model": 1024 neurons/layer, 24 sparse layers.
    let spec = DnnSpec::scaled(1024, 7);
    let dnn = Arc::new(generate_dnn(&spec));
    println!(
        "model: {} neurons x {} layers, {} weights ({:.1} MB in memory)",
        spec.neurons,
        spec.layers,
        dnn.total_nnz(),
        dnn.mem_bytes() as f64 / 1e6
    );

    // 2. An inference batch of 128 sparse samples.
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(128, 7));
    println!(
        "batch: {} samples, {} nonzero pixels",
        inputs.width(),
        inputs.nnz()
    );

    // 3. Ground truth from the single-node reference.
    let expected = dnn.serial_inference(&inputs);

    // 4. The service owns a simulated cloud region. The builder stages the
    //    P=4 partition at build time (pre-warm), so the first request pays
    //    no offline partitioning cost. `Arc<FsdService>` is the handle a
    //    real deployment would share across request-handler threads.
    let service: Arc<FsdService> =
        Arc::new(ServiceBuilder::new(dnn).deterministic(7).prewarm(4).build());

    // 5. What would the paper's §IV-C rules pick for this workload?
    let est_bytes_per_row = 64; // typical compressed activation row
    let recommendation = service.recommend(4, est_bytes_per_row);
    println!(
        "\nrecommendation for P = 4: {} (model {} MB, ~{} B/pair/layer)",
        recommendation.variant,
        recommendation.profile.model_bytes / 1_000_000,
        recommendation.profile.bytes_per_pair_layer
    );

    // 6. Submit with Variant::Auto: the service routes the request through
    //    exactly that recommendation path, per request.
    let report = service
        .submit(&InferenceRequest {
            variant: Variant::Auto,
            workers: 4,
            memory_mb: 1769,
            inputs: inputs.clone(),
        })
        .expect("inference runs");

    assert_eq!(
        report.first_output(),
        &expected,
        "result must equal ground truth"
    );
    assert_eq!(
        report.variant, recommendation.variant,
        "Auto must follow the §IV-C rules"
    );
    println!(
        "\nAuto resolved to {}, P = {}:",
        report.variant, report.workers
    );
    println!(
        "  query latency        : {:.1} ms",
        report.latency.as_millis_f64()
    );
    println!("  per-sample runtime   : {:.3} ms", report.per_sample_ms());
    println!("  lambda invocations   : {}", report.lambda.invocations);
    println!(
        "  SNS billed publishes : {}",
        report.comm.sns_publish_requests
    );
    println!("  SQS API calls        : {}", report.comm.sqs_api_calls);
    println!(
        "  cost (actual)        : ${:.6}",
        report.cost_actual.total()
    );
    println!(
        "  cost (predicted)     : ${:.6}",
        report.cost_predicted.total()
    );

    // 7. The distributed path on demand: force FSD-Inf-Queue across the
    //    pre-warmed 4-worker tree and check it agrees bit-for-bit.
    let distributed = service
        .submit(&InferenceRequest {
            variant: Variant::Queue,
            workers: 4,
            memory_mb: 1769,
            inputs,
        })
        .expect("distributed inference runs");
    assert_eq!(
        distributed.first_output(),
        &expected,
        "distributed result must equal ground truth"
    );
    println!(
        "\nforced {}, P = {}:",
        distributed.variant, distributed.workers
    );
    println!(
        "  query latency        : {:.1} ms",
        distributed.latency.as_millis_f64()
    );
    println!(
        "  SNS billed publishes : {}",
        distributed.comm.sns_publish_requests
    );
    println!(
        "  SQS API calls        : {}",
        distributed.comm.sqs_api_calls
    );
    println!(
        "  cost (actual)        : ${:.6}",
        distributed.cost_actual.total()
    );
    println!("\nboth paths match the serial ground truth bit-for-bit ✓");
}
