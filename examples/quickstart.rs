//! Quickstart: run fully serverless distributed inference end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a sparse DNN (Graph Challenge-style), stages it into the
//! simulated cloud, runs FSD-Inf-Queue across 4 FaaS workers, and checks
//! the distributed result against the single-node ground truth.

use fsd_inference::core::{EngineConfig, FsdInference, InferenceRequest, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use std::sync::Arc;

fn main() {
    // 1. A "trained model": 1024 neurons/layer, 24 sparse layers.
    let spec = DnnSpec::scaled(1024, 7);
    let dnn = Arc::new(generate_dnn(&spec));
    println!(
        "model: {} neurons x {} layers, {} weights ({:.1} MB in memory)",
        spec.neurons,
        spec.layers,
        dnn.total_nnz(),
        dnn.mem_bytes() as f64 / 1e6
    );

    // 2. An inference batch of 128 sparse samples.
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(128, 7));
    println!("batch: {} samples, {} nonzero pixels", inputs.width(), inputs.nnz());

    // 3. Ground truth from the single-node reference.
    let expected = dnn.serial_inference(&inputs);

    // 4. The engine owns a simulated cloud region; `run` stages artifacts
    //    (offline), launches the coordinator + worker tree, and measures.
    let mut engine = FsdInference::new(dnn, EngineConfig::deterministic(7));
    let report = engine
        .run(&InferenceRequest {
            variant: Variant::Queue,
            workers: 4,
            memory_mb: 1769,
            inputs,
        })
        .expect("inference runs");

    assert_eq!(report.output, expected, "distributed result must equal ground truth");
    println!("\nFSD-Inf-Queue, P = {}:", report.workers);
    println!("  query latency        : {:.1} ms", report.latency.as_millis_f64());
    println!("  per-sample runtime   : {:.3} ms", report.per_sample_ms());
    println!("  lambda invocations   : {}", report.lambda.invocations);
    println!("  SNS billed publishes : {}", report.comm.sns_publish_requests);
    println!("  SQS API calls        : {}", report.comm.sqs_api_calls);
    println!("  cost (actual)        : ${:.6}", report.cost_actual.total());
    println!("  cost (predicted)     : ${:.6}", report.cost_predicted.total());
    println!("\noutput matches the serial ground truth bit-for-bit ✓");
}
