//! Continuous-batching acceptance: cross-request coalescing must change
//! *scheduling* without changing *semantics*. A coalesced pass has to
//! produce bit-identical outputs to sequential execution, meter every
//! member under its own flow (billing partitions the global meters
//! exactly), replay bit-identically, keep Interactive traffic ahead of
//! fat Batch coalitions, and — at shutdown — cancel still-queued tickets
//! promptly instead of hanging them.

use fsd_inference::comm::MeterSnapshot;
use fsd_inference::core::{BatchedRequest, FsdError, LaunchPath, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_inference::sched::harness::replay;
use fsd_inference::sched::{
    trace, Arrival, BatchingConfig, Priority, Scheduler, SchedulerBuilder, SchedulerConfig,
};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serialized with the other engine suites: every replay spawns real
/// worker threads.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn engine_guard() -> MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn spec(seed: u64) -> DnnSpec {
    DnnSpec {
        neurons: 72,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed,
    }
}

fn compatible_requests(neurons: usize, n: usize, seed: u64) -> Vec<BatchedRequest> {
    (0..n)
        .map(|i| BatchedRequest {
            variant: Variant::Queue,
            workers: 2,
            memory_mb: 1769,
            batches: vec![generate_inputs(
                neurons,
                &InputSpec::scaled(4 + i, seed + i as u64),
            )],
        })
        .collect()
}

#[test]
fn coalesced_pass_outputs_are_bit_identical_to_sequential() {
    let _guard = engine_guard();
    let spec = spec(37);
    let dnn = Arc::new(generate_dnn(&spec));
    let fresh = || {
        Arc::new(
            ServiceBuilder::new(dnn.clone())
                .deterministic(37)
                .prewarm(2)
                .build(),
        )
    };
    let reqs = compatible_requests(spec.neurons, 4, 37);

    let sequential_svc = fresh();
    let sequential: Vec<_> = reqs
        .iter()
        .map(|r| sequential_svc.submit_batched(r).expect("sequential run"))
        .collect();

    let coalesced_svc = fresh();
    let coalesced = coalesced_svc.submit_coalesced(&reqs);
    assert_eq!(coalesced.len(), reqs.len());
    let mut cold = 0;
    for (i, (c, s)) in coalesced.iter().zip(&sequential).enumerate() {
        let c = c.as_ref().expect("coalesced member runs");
        assert_eq!(c.variant, s.variant, "request {i}: variant diverged");
        assert_eq!(c.workers, s.workers);
        assert_eq!(c.outputs, s.outputs, "request {i}: outputs diverged");
        if c.launch == LaunchPath::ColdStart {
            cold += 1;
        }
    }
    // Followers land warm on the head's resident tree: the whole pass
    // pays exactly one launch.
    assert_eq!(cold, 1, "a coalition pays exactly one cold start");
    assert_eq!(
        coalesced_svc.env().meter().tracked_flows(),
        0,
        "leaked flows"
    );
}

#[test]
fn coalesced_billing_partitions_the_global_meters() {
    let _guard = engine_guard();
    let spec = spec(38);
    let dnn = Arc::new(generate_dnn(&spec));
    let svc = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(38)
            .prewarm(2)
            .build(),
    );
    let reqs = compatible_requests(spec.neurons, 5, 38);
    let reports = svc.submit_coalesced(&reqs);

    // One coalesced tree pass, but every member was metered under its own
    // flow: summing the per-request snapshots must reproduce the global
    // comm meter field for field, and likewise the Lambda meter — no
    // double billing, no unattributed residue.
    let mut comm_sum = MeterSnapshot::default();
    let mut invocations = 0u64;
    let mut mb_ms = 0u64;
    for r in &reports {
        let r = r.as_ref().expect("member runs");
        comm_sum = comm_sum.plus(&r.comm);
        invocations += r.lambda.invocations;
        mb_ms += r.lambda.mb_ms;
    }
    assert_eq!(
        comm_sum,
        svc.env().meter().snapshot(),
        "per-flow comm billing must partition the global meter"
    );
    let lambda = svc.platform().lambda_meter().snapshot();
    assert_eq!((invocations, mb_ms), (lambda.invocations, lambda.mb_ms));
    assert_eq!(svc.env().meter().tracked_flows(), 0, "leaked comm flows");
    assert_eq!(svc.platform().lambda_meter().tracked_flows(), 0);
}

/// A manual-dispatch scheduler with continuous batching over a fresh
/// deterministic service.
fn fresh_batched_scheduler(seed: u64, cfg: SchedulerConfig) -> Scheduler {
    let dnn = Arc::new(generate_dnn(&spec(seed)));
    let service = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(seed)
            .prewarm(1)
            .prewarm(2)
            .build(),
    );
    SchedulerBuilder::new(cfg.manual().batched(BatchingConfig::default()))
        .model("m", service)
        .build()
}

#[test]
fn batched_bursty_replays_are_bit_identical() {
    let _guard = engine_guard();
    let trace = trace::bursty(3, 8, 400_000, 41);
    let cfg = SchedulerConfig::default().global_cap(2).queue_capacity(64);
    let run = || {
        let sched = fresh_batched_scheduler(41, cfg);
        let report = replay(&sched, "m", &trace);
        let groups = sched.admission_groups();
        (report, groups)
    };
    let (first, groups) = run();
    for run_i in 1..3 {
        let (again, groups_again) = run();
        assert_eq!(first, again, "run {run_i}: batched replay diverged");
        assert_eq!(
            groups, groups_again,
            "run {run_i}: coalition formation diverged"
        );
    }
    assert!(first.rejected.is_empty(), "generous queues must not reject");
    assert_eq!(first.stats.failed, 0);
    assert!(
        first.stats.coalesced > 0,
        "the bursty trace must form coalitions"
    );
    assert!(groups.iter().any(|g| g.len() > 1));
    // A coalition never spans priority classes.
    let class_of: HashMap<u64, Priority> =
        first.outcomes.iter().map(|o| (o.seq, o.priority)).collect();
    for group in &groups {
        assert!(
            group.iter().all(|s| class_of[s] == class_of[&group[0]]),
            "coalition spans classes: {group:?}"
        );
    }
}

#[test]
fn interactive_stays_bounded_while_batch_coalitions_drain() {
    let _guard = engine_guard();
    // Adversarial instant: 24 same-shape Batch requests enqueued *before*
    // 4 Interactive ones, all sharing one arrival time. Without the
    // fairness rule the Batch head would widen into max_batch coalitions
    // and the Interactive tail would wait behind them.
    let mut arrivals: Vec<Arrival> = Vec::new();
    for i in 0..28usize {
        arrivals.push(Arrival {
            at: fsd_inference::comm::VirtualTime::ZERO,
            priority: if i < 24 {
                Priority::Batch
            } else {
                Priority::Interactive
            },
            variant: Variant::Queue,
            workers: 2,
            memory_mb: 1769,
            width: 4 + (i % 5),
            input_seed: 43 + i as u64,
        });
    }
    let cfg = SchedulerConfig::default()
        .global_cap(1)
        .queue_capacity(32)
        .weights(3, 1);
    let sched = fresh_batched_scheduler(43, cfg);
    let report = replay(&sched, "m", &arrivals);
    let groups = sched.admission_groups();
    assert!(report.rejected.is_empty());
    assert_eq!(report.stats.failed, 0);

    let interactive: HashSet<u64> = report
        .outcomes
        .iter()
        .filter(|o| o.priority == Priority::Interactive)
        .map(|o| o.seq)
        .collect();
    assert_eq!(interactive.len(), 4);

    // Invariant: a multi-member Batch coalition may only form once no
    // Interactive request is still queued — Interactive preempts the
    // window close (Batch heads may still run solo in their SWRR turns).
    let mut interactive_seen = 0usize;
    for group in &groups {
        if interactive.contains(&group[0]) {
            interactive_seen += group.len();
        } else if group.len() > 1 {
            assert_eq!(
                interactive_seen,
                interactive.len(),
                "a Batch coalition widened while Interactive waited: {groups:?}"
            );
        }
    }
    // Boundedness: with weights 3:1 the last Interactive admission lands
    // within the first few groups — never behind the Batch backlog.
    let last_interactive = groups
        .iter()
        .rposition(|g| interactive.contains(&g[0]))
        .expect("interactive admitted");
    assert!(
        last_interactive < interactive.len() + 4,
        "interactive delayed to group {last_interactive}: {groups:?}"
    );
    // The Batch backlog did drain through real coalitions afterwards.
    assert!(report.stats.coalitions >= 2);
    assert!(report.stats.coalesced >= 16);
    assert_eq!(report.stats.completed, 28);
}

#[test]
fn shutdown_resolves_queued_tickets_within_a_bound() {
    let _guard = engine_guard();
    let dnn = Arc::new(generate_dnn(&spec(44)));
    let svc = Arc::new(ServiceBuilder::new(dnn).deterministic(44).build());
    // Manual mode with no dispatch calls: every accepted ticket stays
    // queued past the (never-consumed) caps.
    let sched = Scheduler::wrap(
        svc,
        SchedulerConfig::default()
            .manual()
            .global_cap(1)
            .queue_capacity(16),
    );
    let inputs = generate_inputs(72, &InputSpec::scaled(4, 44));
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            let class = if i % 2 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            };
            sched
                .enqueue_default(
                    class,
                    BatchedRequest {
                        variant: Variant::Serial,
                        workers: 1,
                        memory_mb: 1769,
                        batches: vec![inputs.clone()],
                    },
                )
                .expect("accepted")
        })
        .collect();
    sched.shutdown();

    // Join every ticket from its own thread with an explicit bound: a
    // regression back to hanging waits fails here instead of wedging the
    // whole suite.
    let (tx, rx) = std::sync::mpsc::channel();
    for t in tickets {
        let tx = tx.clone();
        std::thread::spawn(move || {
            let _ = tx.send(t.wait());
        });
    }
    drop(tx);
    for _ in 0..12 {
        let result = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("cancelled ticket must resolve within the bound");
        assert!(
            matches!(result, Err(FsdError::ShuttingDown)),
            "queued ticket must cancel with ShuttingDown, got {result:?}"
        );
    }
    let stats = sched.stats();
    assert_eq!(stats.cancelled, 12);
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.inflight, 0);
    assert_eq!(stats.completed, 0);
    // A post-shutdown drain returns immediately on the empty system.
    sched.drain();
}
