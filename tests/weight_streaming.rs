//! Multicast weight-streaming acceptance: streamed cold starts must be
//! bit-identical to independent eager loads on every transport, keep the
//! exactly-once artifact-GET invariant (rank 0 fetches each block once and
//! multicasts it), bill forwarded frames to the requesting flow, survive
//! mid-stream faults by falling back to the shared cache without
//! double-billing, and serve repeat cold starts from the cache until an
//! invalidation retires it.
//!
//! Runs under the CI channel matrix (`FSD_TEST_VARIANT`), so the stream
//! equivalence holds on queue, object, hybrid and direct transports alike.

mod common;

use common::test_variant;
use fsd_inference::comm::{ApiClass, TargetedFault};
use fsd_inference::core::{FsdService, InferenceRequest, LaunchPath, ServiceBuilder};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_sparse::SparseRows;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialized with the other engine suites: every request spawns real
/// worker threads.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn engine_guard() -> MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const LAYERS: usize = 3;

fn spec(seed: u64) -> DnnSpec {
    DnnSpec {
        neurons: 64,
        layers: LAYERS,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed,
    }
}

/// Ground truth plus two identically seeded services: one loading weights
/// independently (the original eager path), one streaming them down the
/// launch cascade.
fn paired_services(seed: u64) -> (Arc<FsdService>, Arc<FsdService>, SparseRows, SparseRows) {
    let spec = spec(seed);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(10, seed));
    let expected = dnn.serial_inference(&inputs);
    let eager = Arc::new(ServiceBuilder::new(dnn.clone()).deterministic(seed).build());
    let streamed = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(seed)
            .weight_streaming(true)
            .build(),
    );
    (eager, streamed, inputs, expected)
}

fn request(inputs: &SparseRows, workers: u32) -> InferenceRequest {
    InferenceRequest {
        variant: test_variant(),
        workers,
        memory_mb: 1769,
        inputs: inputs.clone(),
    }
}

/// Weight objects a `P`-way partitioned model stages: owned/send/recv maps
/// plus one block per layer, per rank.
fn weight_objects(p: u64) -> u64 {
    p * (3 + LAYERS as u64)
}

#[test]
fn streamed_cold_start_is_bit_identical_and_faster_than_independent_loads() {
    let _guard = engine_guard();
    // P=4 exercises the flat relay-free tree (branching 4); P=8 forces a
    // two-level cascade where ranks 1–4 relay frames to ranks 5–7.
    for (p, seed) in [(4u32, 61u64), (8, 62)] {
        let (eager, streamed, inputs, expected) = paired_services(seed);
        let cold_eager = eager.submit(&request(&inputs, p)).expect("eager cold run");
        let cold_streamed = streamed
            .submit(&request(&inputs, p))
            .expect("streamed cold run");

        assert_eq!(cold_eager.launch, LaunchPath::ColdStart, "P={p}");
        assert_eq!(cold_streamed.launch, LaunchPath::ColdStart, "P={p}");
        // Bit-identical on both paths, equal to the serial ground truth.
        assert_eq!(cold_eager.first_output(), &expected, "P={p}");
        assert_eq!(cold_streamed.outputs, cold_eager.outputs, "P={p}");
        // Identical kernel work: streaming changes *when* blocks decode,
        // never what is computed.
        assert_eq!(cold_streamed.work_done, cold_eager.work_done, "P={p}");
        // The cascade pays a coordinator function plus P workers; flat
        // controller-driven provisioning dispatches the P workers straight
        // from the control plane — one invocation fewer.
        assert_eq!(cold_eager.lambda.invocations, 1 + p as u64, "P={p}");
        assert_eq!(cold_streamed.lambda.invocations, p as u64, "P={p}");
        // Exactly-once fetch: the source GETs each weight object once and
        // multicasts it, so the total S3 GET count matches P workers each
        // fetching their own share independently.
        assert_eq!(
            cold_streamed.comm.s3_get_requests, cold_eager.comm.s3_get_requests,
            "P={p}: multicast must not change the artifact GET total"
        );
        // The stream actually ran — and only on the streaming service.
        assert!(cold_streamed.comm.weight_frames > 0, "P={p}");
        assert!(cold_streamed.comm.weight_bytes > 0, "P={p}");
        assert_eq!(cold_eager.comm.weight_frames, 0, "P={p}");
        // The point of the exercise: the streamed cold start is faster.
        assert!(
            cold_streamed.latency < cold_eager.latency,
            "P={p}: streamed cold {} must beat eager cold {}",
            cold_streamed.latency,
            cold_eager.latency
        );
        // No leaked per-request state on either service.
        for (label, service) in [("eager", &eager), ("streamed", &streamed)] {
            service.env().assert_no_residue();
            assert_eq!(service.env().meter().tracked_flows(), 0, "{label} P={p}");
            assert_eq!(
                service.platform().lambda_meter().tracked_flows(),
                0,
                "{label} P={p}"
            );
        }
    }
}

#[test]
fn forwarded_frames_bill_to_the_requesting_flow_and_partition_exactly() {
    let _guard = engine_guard();
    let (_, streamed, inputs, expected) = paired_services(63);
    let report = streamed.submit(&request(&inputs, 4)).expect("cold run");
    assert_eq!(report.first_output(), &expected);
    // Every frame the fabric carried was billed inside this request's flow
    // window: the global meters grew by exactly the report's share and the
    // failed-attempt accumulator stayed empty.
    let global = streamed.env().meter().snapshot();
    let failed = streamed.failed_attempt_bill();
    assert!(report.comm.weight_frames > 0);
    assert_eq!(
        global.weight_frames,
        report.comm.weight_frames + failed.comm.weight_frames
    );
    assert_eq!(
        global.weight_bytes,
        report.comm.weight_bytes + failed.comm.weight_bytes
    );
    assert_eq!(failed.comm.weight_frames, 0);
    assert_eq!(streamed.env().meter().tracked_flows(), 0);
    streamed.env().assert_no_residue();
}

#[test]
fn shared_cache_serves_repeat_cold_starts_until_invalidated() {
    let _guard = engine_guard();
    let seed = 64;
    let spec = spec(seed);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(10, seed));
    let expected = dnn.serial_inference(&inputs);
    let service = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(seed)
            .weight_streaming(true)
            .warm_pool(2, u64::MAX)
            .build(),
    );
    let p = 4u32;
    let req = request(&inputs, p);
    let variant = req.variant;

    // Cold miss: the stream populates the shared cache as it multicasts.
    let miss = service.submit(&req).expect("cache-miss cold run");
    assert_eq!(miss.launch, LaunchPath::ColdStart);
    let stats = service.weight_cache().stats();
    assert_eq!(stats.inserts, weight_objects(p as u64));
    assert_eq!(stats.hits, 0);
    assert!(!service.weight_cache().is_empty());

    // Evicting the parked trees (predictor decision, capacity pressure)
    // preserves the cache: the relaunch is a ColdStart that fetches
    // *nothing* from object storage for weights.
    assert_eq!(service.evict_warm_trees(variant, p, 1769), 1);
    let gets_before = service.env().meter().snapshot().s3_get_requests;
    let hit = service.submit(&req).expect("cache-hit cold run");
    assert_eq!(hit.launch, LaunchPath::ColdStart);
    let hit_gets = service.env().meter().snapshot().s3_get_requests - gets_before;
    let input_gets = miss.comm.s3_get_requests - weight_objects(p as u64);
    assert_eq!(
        hit_gets, input_gets,
        "a fully cached relaunch must issue zero weight GETs (inputs only)"
    );
    assert!(service.weight_cache().stats().hits >= weight_objects(p as u64));
    assert_eq!(hit.outputs, miss.outputs);
    assert_eq!(hit.first_output(), &expected);
    // At this model size the fetches hide entirely inside the boot
    // stagger, so the cache cannot *lengthen* the critical path; the GET
    // accounting above is the load-bearing proof that it was used. The
    // latency win is asserted at realistic scale by the cold_start bench.
    assert!(
        hit.latency <= miss.latency,
        "cached cold start {} must not exceed the populating one {}",
        hit.latency,
        miss.latency
    );

    // Invalidation (model re-staged) retires the generation and sweeps the
    // blocks: the next request is a true miss again.
    service.invalidate_warm_trees();
    assert_eq!(service.weight_cache().len(), 0);
    let after = service.submit(&req).expect("post-invalidate cold run");
    assert_eq!(after.launch, LaunchPath::ColdStart);
    assert_eq!(after.outputs, miss.outputs);
    let stats = service.weight_cache().stats();
    assert_eq!(
        stats.inserts,
        2 * weight_objects(p as u64),
        "the post-invalidate run must re-populate from object storage"
    );
    service.invalidate_warm_trees();
    service.env().assert_no_residue();
    assert_eq!(service.env().meter().tracked_flows(), 0);
}

#[test]
fn mid_stream_fault_falls_back_to_cache_without_extra_fetches_or_billing() {
    let _guard = engine_guard();
    let (_, clean, inputs, expected) = paired_services(65);
    let baseline = clean.submit(&request(&inputs, 4)).expect("clean run");

    let (_, faulted, inputs, _) = paired_services(65);
    // Kill the very first forwarded frame permanently: the source aborts
    // the cascade and every receiver falls back to loading through the
    // shared cache — which already holds everything the source fetched
    // before the fault, so no block is ever fetched twice.
    faulted
        .env()
        .faults()
        .inject(TargetedFault::first(ApiClass::WeightStream, "").permanent());
    let report = faulted
        .submit(&request(&inputs, 4))
        .expect("a torn stream must degrade, not fail the request");
    assert_eq!(report.launch, LaunchPath::ColdStart);
    assert_eq!(report.first_output(), &expected);
    assert_eq!(report.outputs, baseline.outputs, "fallback changes nothing");
    // Exactly-once even through the fault: blocks the source had already
    // cached are not re-fetched by the falling-back receivers, and blocks
    // it never reached are fetched by exactly one receiver each.
    assert_eq!(
        report.comm.s3_get_requests, baseline.comm.s3_get_requests,
        "the fallback must not double-fetch any artifact"
    );
    // The request succeeded, so nothing landed in the failed-attempt bill
    // and the flow windows all closed.
    let failed = faulted.failed_attempt_bill();
    assert_eq!(failed.lambda.invocations, 0);
    assert_eq!(failed.comm.weight_frames, 0);
    assert_eq!(faulted.env().meter().tracked_flows(), 0);
    assert_eq!(faulted.platform().lambda_meter().tracked_flows(), 0);
    faulted.env().assert_no_residue();
}

#[test]
fn refused_rank_launch_fails_the_request_cleanly_and_recovers() {
    let _guard = engine_guard();
    let (_, streamed, inputs, expected) = paired_services(66);
    // Flat provisioning invokes every rank by name; refuse rank 2's launch
    // permanently. The abort flag must unwedge the peers' drain loops and
    // the request must fail without leaking flows or parked frames.
    streamed
        .env()
        .faults()
        .inject(TargetedFault::first(ApiClass::InstanceLaunch, "fsd-worker-2").permanent());
    let err = streamed
        .submit(&request(&inputs, 4))
        .expect_err("a refused rank must fail the streamed request");
    let msg = err.to_string();
    assert!(
        msg.contains("faulted") || msg.contains("abort") || msg.contains("instance"),
        "unexpected failure detail: {msg}"
    );
    // The failed attempt was billed (AWS semantics) into the accumulator.
    assert!(streamed.failed_attempt_bill().lambda.invocations > 0);
    assert_eq!(streamed.env().meter().tracked_flows(), 0);
    assert_eq!(streamed.platform().lambda_meter().tracked_flows(), 0);
    streamed.env().assert_no_residue();
    // The fault was one-shot: the next request streams normally.
    let recovered = streamed.submit(&request(&inputs, 4)).expect("recovers");
    assert_eq!(recovered.first_output(), &expected);
    streamed.env().assert_no_residue();
}

#[test]
fn concurrent_streamed_requests_survive_cache_invalidation_races() {
    let _guard = engine_guard();
    let seed = 67;
    let spec = spec(seed);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(10, seed));
    let expected = dnn.serial_inference(&inputs);
    let service = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(seed)
            .weight_streaming(true)
            .warm_pool(2, u64::MAX)
            .build(),
    );
    // Two submitting threads race three invalidations: loads straddling an
    // invalidation must reject their stale inserts rather than repopulate
    // retired blocks, and every request must still be exactly right.
    let submitters: Vec<_> = (0..2)
        .map(|_| {
            let service = service.clone();
            let inputs = inputs.clone();
            std::thread::spawn(move || {
                (0..3)
                    .map(|rep| {
                        service
                            .submit(&request(&inputs, 3))
                            .unwrap_or_else(|e| panic!("rep {rep}: {e}"))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for _ in 0..3 {
        service.invalidate_warm_trees();
        std::thread::yield_now();
    }
    for handle in submitters {
        for report in handle.join().expect("no panic") {
            assert_eq!(report.first_output(), &expected);
        }
    }
    // Whatever interleaving happened, no retired block survived: a final
    // invalidate leaves the cache empty and the region residue-free.
    service.invalidate_warm_trees();
    assert_eq!(service.weight_cache().len(), 0);
    assert!(service.weight_cache().residue_report().is_empty());
    assert_eq!(service.env().meter().tracked_flows(), 0);
    service.env().assert_no_residue();
}
