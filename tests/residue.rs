//! Post-teardown leak audit: after every request completes and warm
//! capacity is released, the cloud region must hold **zero** per-request
//! residue — no queues, no filter-policy subscriptions, no objects in the
//! data buckets, no tracked billing flows, no parked trees, no tracked
//! lambda flows. `CloudEnv::assert_no_residue` is the runtime twin of the
//! `teardown-pair` static lint: the lint proves every `create_*` has a
//! teardown on the public surface; this suite proves the teardowns are
//! actually called.
//!
//! The audit requires quiescence, so every test drains its service before
//! auditing.

use fsd_inference::core::{FsdService, InferenceRequest, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_sparse::SparseRows;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialized with the other engine suites: every request spawns real
/// worker threads.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn engine_guard() -> MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn spec(seed: u64) -> DnnSpec {
    DnnSpec {
        neurons: 64,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed,
    }
}

fn service_for(seed: u64) -> (FsdService, SparseRows) {
    let spec = spec(seed);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(10, seed));
    (ServiceBuilder::new(dnn).deterministic(seed).build(), inputs)
}

fn audit(service: &FsdService, label: &str) {
    let residue = service.env().residue_report();
    assert!(
        residue.is_empty(),
        "{label}: cloud residue after teardown: {}",
        residue.join("; ")
    );
    assert_eq!(
        service.platform().lambda_meter().tracked_flows(),
        0,
        "{label}: lambda meter still tracks per-flow buckets"
    );
}

#[test]
fn every_variant_leaves_zero_residue() {
    let _guard = engine_guard();
    for (i, variant) in [
        Variant::Serial,
        Variant::Queue,
        Variant::Object,
        Variant::Hybrid,
        Variant::Direct,
        Variant::Auto,
    ]
    .into_iter()
    .enumerate()
    {
        let (service, inputs) = service_for(10 + i as u64);
        let workers = if variant == Variant::Serial { 1 } else { 3 };
        service
            .submit(&InferenceRequest {
                variant,
                workers,
                memory_mb: 1769,
                inputs,
            })
            .unwrap_or_else(|e| panic!("{variant}: {e}"));
        audit(&service, &variant.to_string());
        service.env().assert_no_residue();
    }
}

#[test]
fn repeated_requests_accumulate_no_residue() {
    let _guard = engine_guard();
    let (service, inputs) = service_for(42);
    for rep in 0..3 {
        service
            .submit(&InferenceRequest {
                variant: Variant::Queue,
                workers: 3,
                memory_mb: 1769,
                inputs: inputs.clone(),
            })
            .unwrap_or_else(|e| panic!("rep {rep}: {e}"));
    }
    audit(&service, "3 repeated queue requests");
}

#[test]
fn warm_pool_release_leaves_zero_residue() {
    let _guard = engine_guard();
    let s = spec(7);
    let dnn = Arc::new(generate_dnn(&s));
    let inputs = generate_inputs(s.neurons, &InputSpec::scaled(10, 7));
    let service = ServiceBuilder::new(dnn)
        .deterministic(7)
        .warm_pool(2, u64::MAX)
        .build();
    for _ in 0..2 {
        service
            .submit(&InferenceRequest {
                variant: Variant::Queue,
                workers: 3,
                memory_mb: 1769,
                inputs: inputs.clone(),
            })
            .expect("pooled queue request");
    }
    // Parked trees legitimately hold workers while idle; release them, then
    // the region must audit clean.
    service.invalidate_warm_trees();
    let stats = service.warm_pool_stats().expect("pool enabled");
    assert_eq!(stats.idle, 0, "parked trees survived invalidation");
    audit(&service, "warm pool after invalidate");
}

#[test]
fn audit_detects_planted_leaks() {
    // Sensitivity check: a checker that cannot fail proves nothing.
    let (service, _) = service_for(99);
    let env = service.env();

    let _q = env.queue("leak-probe");
    let report = env.residue_report();
    assert!(
        report.iter().any(|r| r.contains("queue")),
        "planted queue not reported: {report:?}"
    );
    env.remove_queue("leak-probe");

    let mut clock = fsd_inference::comm::VClock::default();
    env.object_store()
        .put(
            &fsd_inference::comm::bucket_name(0),
            "leak",
            &b"x"[..],
            &mut clock,
        )
        .expect("put succeeds on pre-created bucket");
    let report = env.residue_report();
    assert!(
        report.iter().any(|r| r.contains("object")),
        "planted object not reported: {report:?}"
    );
    env.object_store()
        .delete_prefix(&fsd_inference::comm::bucket_name(0), "");
    env.assert_no_residue();

    let mut clock = fsd_inference::comm::VClock::default();
    clock.set_flow(77);
    env.direct()
        .punch(&mut clock, 0, 1)
        .expect("punch succeeds without faults");
    let report = env.residue_report();
    assert!(
        report.iter().any(|r| r.contains("direct connection")),
        "planted direct connection not reported: {report:?}"
    );
    env.direct().close_flow(77);
    // The punch billed on flow 77, opening a per-flow meter bucket — the
    // audit counts that as residue too, so release it like teardown would.
    env.meter().release_flow(77);
    env.assert_no_residue();
}

#[test]
fn audit_detects_leaked_weight_stream_state() {
    // Sensitivity checks for the two kinds of state multicast weight
    // streaming adds: frames parked in a flow's mailboxes, and cache
    // blocks surviving the retirement of their generation.
    let (service, _) = service_for(98);
    let env = service.env();

    // A streamed launch that died between send and drain leaves its
    // frames parked; the audit must see them.
    let mut clock = fsd_inference::comm::VClock::default();
    clock.set_flow(88);
    env.weight_net()
        .send_block(
            &mut clock,
            1,
            3,
            "model/p4/w3/owned",
            Arc::from(&b"blk"[..]),
        )
        .expect("send succeeds without faults");
    let report = env.residue_report();
    assert!(
        report.iter().any(|r| r.contains("weight frame")),
        "planted undrained frame not reported: {report:?}"
    );
    // Teardown twin: closing the flow drops the mailboxes (the send also
    // billed on flow 88, so release that window like teardown would).
    assert_eq!(env.weight_net().close_flow(88), 1);
    env.meter().release_flow(88);
    env.assert_no_residue();

    // A retired generation whose blocks were never swept is a leak the
    // cache's own audit must flag — and purge_stale must clear.
    let cache = service.weight_cache();
    assert!(cache.insert_block(
        "model/p4/w0/owned",
        Arc::from(&b"blk"[..]),
        cache.generation()
    ));
    cache.retire_generation();
    let report = cache.residue_report();
    assert!(
        report
            .iter()
            .any(|r| r.contains("stale weight-cache block")),
        "planted stale block not reported: {report:?}"
    );
    assert_eq!(cache.purge_stale(), 1);
    assert!(cache.residue_report().is_empty());
    assert_eq!(cache.len(), 0);
}

#[test]
fn streamed_requests_leave_zero_residue() {
    let _guard = engine_guard();
    let s = spec(97);
    let dnn = Arc::new(generate_dnn(&s));
    let inputs = generate_inputs(s.neurons, &InputSpec::scaled(10, 97));
    let service = ServiceBuilder::new(dnn)
        .deterministic(97)
        .weight_streaming(true)
        .warm_pool(2, u64::MAX)
        .build();
    for rep in 0..2 {
        service
            .submit(&InferenceRequest {
                variant: Variant::Queue,
                workers: 4,
                memory_mb: 1769,
                inputs: inputs.clone(),
            })
            .unwrap_or_else(|e| panic!("rep {rep}: {e}"));
    }
    // Parked trees and cached blocks are legitimate warm capacity; an
    // invalidation releases both, after which the region audits clean.
    service.invalidate_warm_trees();
    assert_eq!(service.weight_cache().len(), 0);
    assert!(service.weight_cache().residue_report().is_empty());
    audit(&service, "streamed requests after invalidate");
    service.env().assert_no_residue();
}

#[test]
fn remove_bucket_is_create_buckets_teardown_twin() {
    // The teardown-pair lint demands create_bucket/remove_bucket; prove the
    // pair actually round-trips.
    let (service, _) = service_for(5);
    let store = service.env().object_store();
    store.create_bucket("transient");
    assert!(store.bucket_exists("transient"));
    let mut clock = fsd_inference::comm::VClock::default();
    store
        .put("transient", "k", &b"v"[..], &mut clock)
        .expect("put into transient bucket");
    store.remove_bucket("transient");
    assert!(!store.bucket_exists("transient"));
    // Idempotent, like create_bucket.
    store.remove_bucket("transient");
}
