//! Failure injection and robustness: straggler redelivery, jittered
//! (non-deterministic-latency) regions, degraded polling, and corrupted
//! payload handling. Correctness must never depend on fair-weather timing.

use fsd_inference::comm::{
    CloudConfig, CloudEnv, LatencyModel, Message, MessageAttributes, PollKind, VClock, VirtualTime,
};
use fsd_inference::core::{InferenceRequest, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use std::sync::{Arc, Mutex, MutexGuard};

static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn engine_guard() -> MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn msg(source: u32, body: &[u8]) -> Message {
    Message {
        attributes: MessageAttributes {
            flow: 0,
            source,
            target: 0,
            layer: 0,
            total_chunks: 1,
            batch: 0,
        },
        body: body.to_vec(),
    }
}

#[test]
fn visibility_timeout_redelivers_undeleted_messages() {
    // A consumer crash after receive (before delete) must not lose data:
    // the visibility timeout expires and the message is redelivered.
    let env = CloudEnv::new(CloudConfig::deterministic(1));
    let q = env.queue("crash-test");
    q.enqueue(VirtualTime::ZERO, msg(1, b"precious"));
    let mut clock = VClock::default();
    let (got, _) = q.receive_wait(&mut clock, 1.0);
    assert_eq!(got.len(), 1);
    // Consumer "crashes" here — no delete. Expiry returns it to the queue.
    q.requeue_in_flight();
    let (again, _) = q.receive_wait(&mut clock, 1.0);
    assert_eq!(again.len(), 1);
    assert_eq!(again[0].message.body, b"precious");
    assert_ne!(
        again[0].handle, got[0].handle,
        "redelivery issues a fresh handle"
    );
}

#[test]
fn short_polling_eventually_drains_but_wastes_calls() {
    // The paper's finding: short polling misses visible messages (subset of
    // servers) and therefore needs more calls for the same work.
    let env = CloudEnv::new(CloudConfig::deterministic(2));
    let q = env.queue("short-poll");
    for i in 0..30 {
        q.enqueue(VirtualTime::ZERO, msg(i, b"x"));
    }
    let mut clock = VClock::default();
    let mut received = 0;
    let mut calls = 0;
    while received < 30 {
        let got = q.poll(&mut clock, PollKind::Short);
        calls += 1;
        received += got.len();
        let handles: Vec<u64> = got.iter().map(|m| m.handle).collect();
        if !handles.is_empty() {
            q.delete_batch(&mut clock, &handles);
        }
        assert!(calls < 1000, "short polling never drained the queue");
    }
    // Long polling would need ceil(30/10) = 3 receive calls.
    assert!(
        calls > 3,
        "short polling should be strictly less efficient, used {calls} calls"
    );
}

#[test]
fn jittered_latencies_do_not_affect_results() {
    let _guard = engine_guard();
    // Full-noise region (default 15 % jitter): latencies vary, outputs
    // must not.
    let spec = DnnSpec {
        neurons: 96,
        layers: 4,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: 31,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(16, 31));
    let expected = dnn.serial_inference(&inputs);
    // Jittered cloud (default latency noise), pinned seed.
    let cloud = fsd_inference::comm::CloudConfig {
        seed: 31,
        ..Default::default()
    };
    let service = ServiceBuilder::new(dnn).cloud(cloud).build();
    for variant in [Variant::Queue, Variant::Object] {
        let report = service
            .submit(&InferenceRequest {
                variant,
                workers: 4,
                memory_mb: 1769,
                inputs: inputs.clone(),
            })
            .unwrap_or_else(|e| panic!("{variant} under jitter: {e}"));
        assert_eq!(
            report.first_output(),
            &expected,
            "{variant} wrong under jitter"
        );
    }
}

#[test]
fn slow_channel_region_still_correct() {
    let _guard = engine_guard();
    // A degraded region: 10x service latencies. Runs slower, same result.
    let spec = DnnSpec {
        neurons: 96,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: 32,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(12, 32));
    let expected = dnn.serial_inference(&inputs);

    let mut slow = LatencyModel::deterministic();
    slow.sns_publish_us *= 10;
    slow.sns_delivery_us *= 10;
    slow.sqs_poll_us *= 10;
    slow.s3_put_us *= 10;
    slow.s3_get_us *= 10;
    slow.s3_list_us *= 10;

    let mut slow_cloud = CloudConfig::deterministic(32);
    slow_cloud.latency = slow;

    let fast_service = ServiceBuilder::new(dnn.clone()).deterministic(32).build();
    let slow_service = ServiceBuilder::new(dnn)
        .deterministic(32)
        .cloud(slow_cloud)
        .build();
    let req = InferenceRequest {
        variant: Variant::Object,
        workers: 3,
        memory_mb: 1769,
        inputs,
    };
    let fast = fast_service.submit(&req).expect("fast region");
    let slow = slow_service.submit(&req).expect("slow region");
    assert_eq!(fast.first_output(), &expected);
    assert_eq!(slow.first_output(), &expected);
    assert!(
        slow.latency > fast.latency,
        "10x latencies must slow the run: {} vs {}",
        slow.latency,
        fast.latency
    );
}

#[test]
fn corrupted_payload_surfaces_as_comm_error() {
    // A corrupted wire body must produce a clean error, not a wrong result.
    use fsd_inference::sparse::{codec, compress};
    let block = generate_inputs(64, &InputSpec::scaled(8, 33));
    let mut wire_bytes = compress::compress(&codec::encode(&block));
    let last = wire_bytes.len() - 1;
    wire_bytes[last] ^= 0xFF;
    let decompressed = compress::decompress(&wire_bytes);
    match decompressed {
        Err(_) => {} // rejected at the compression frame
        Ok(bytes) => {
            assert!(
                codec::decode(&bytes).is_err(),
                "corruption must not decode cleanly"
            );
        }
    }
}

#[test]
fn scheduler_failed_request_releases_slot_and_does_not_wedge_the_queue() {
    let _guard = engine_guard();
    // The scheduler's failure story: a request that dies mid-flight must
    // release its concurrency slot and let the backlog keep draining. The
    // "broken" model's compute is so slow that any request blows the 900 s
    // FaaS runtime limit (a mid-execution kill, not an admission reject).
    use fsd_inference::core::{BatchedRequest, FsdError, ServiceBuilder};
    use fsd_inference::faas::ComputeModel;
    use fsd_inference::sched::{Priority, SchedulerBuilder, SchedulerConfig};

    let spec = DnnSpec {
        neurons: 64,
        layers: 2,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: 35,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(8, 35));
    let expected = dnn.serial_inference(&inputs);
    let good = Arc::new(ServiceBuilder::new(dnn.clone()).deterministic(35).build());
    let broken = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(35)
            .compute(ComputeModel {
                units_per_sec_per_vcpu: 1e-3, // ~3 hours of virtual time per unit
                parallel_fraction: 0.85,
            })
            .build(),
    );

    // Global cap 1: if the failing request held its slot, nothing behind it
    // could ever run and every wait below would hang.
    let sched = SchedulerBuilder::new(SchedulerConfig::default().global_cap(1))
        .model("broken", broken.clone())
        .model("good", good)
        .build();
    let request = |inputs: &fsd_inference::sparse::SparseRows| BatchedRequest {
        variant: Variant::Serial,
        workers: 1,
        memory_mb: 1769,
        batches: vec![inputs.clone()],
    };
    let doomed = sched
        .enqueue("broken", Priority::Interactive, request(&inputs))
        .expect("admission accepts it — the failure is mid-flight");
    let survivors: Vec<_> = (0..3)
        .map(|i| {
            let class = if i == 1 {
                Priority::Batch
            } else {
                Priority::Interactive
            };
            sched
                .enqueue("good", class, request(&inputs))
                .expect("accepted behind the doomed request")
        })
        .collect();

    match doomed.wait() {
        Err(FsdError::Timeout { elapsed, limit }) => {
            assert!(elapsed > limit, "kill fired past the limit")
        }
        other => panic!("expected a mid-flight timeout, got {other:?}"),
    }
    for (i, t) in survivors.into_iter().enumerate() {
        let report = t
            .wait()
            .unwrap_or_else(|e| panic!("survivor {i} wedged: {e}"));
        assert_eq!(
            report.first_output(),
            &expected,
            "survivor {i} wrong output"
        );
    }

    let stats = sched.stats();
    assert_eq!(stats.failed, 1, "exactly the doomed request failed");
    assert_eq!(stats.completed, 3, "the backlog drained past the failure");
    assert_eq!(stats.inflight, 0, "the failed request released its slot");
    assert_eq!(stats.queued, 0);
    assert!(stats.max_inflight <= 1);
    // The failed request tore down its flow state like any other: no
    // per-flow meter buckets or request resources survive it.
    assert_eq!(broken.env().meter().tracked_flows(), 0);
    assert_eq!(broken.platform().lambda_meter().tracked_flows(), 0);
    assert_eq!(broken.env().queue_count(), 0);
}

#[test]
fn breaker_trips_degrades_auto_and_recovers_via_half_open_probes() {
    let _guard = engine_guard();
    // The transport scoreboard end to end: targeted NAT-punch refusals
    // fail enough direct requests to trip its breaker, Auto routing
    // degrades direct → hybrid while the breaker is open, and once the
    // cooldown drains the half-open probes run on direct again and close
    // it.
    use fsd_inference::comm::{ApiClass, TargetedFault};
    use fsd_inference::core::{BatchedRequest, BreakerState, FsdError};

    let spec = DnnSpec {
        neurons: 96,
        layers: 2,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: 36,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(8, 36));
    let expected = dnn.serial_inference(&inputs);
    // A Serial instance too small for any model, so Auto recommends a
    // transport — the tiny per-pair volume lands in the Direct band.
    let service = ServiceBuilder::new(dnn)
        .deterministic(36)
        .serial_memory_mb(0)
        .build();
    let request = |variant| BatchedRequest {
        variant,
        workers: 3,
        memory_mb: 1769,
        batches: vec![inputs.clone()],
    };
    let auto_req = request(Variant::Auto);
    assert_eq!(service.resolve_variant(&auto_req), Variant::Direct);

    // Trip the direct transport: five explicit-direct requests, each
    // refused at its first pairwise punch by a targeted *permanent* fault
    // (never retried — a clean terminal communication failure). The
    // explicit variant surfaces the error instead of being rerouted.
    for i in 0..5 {
        service
            .env()
            .faults()
            .inject(TargetedFault::first(ApiClass::DirectPunch, "f").permanent());
        let err = service
            .submit_batched(&request(Variant::Direct))
            .expect_err("an injected punch refusal must fail the request");
        assert!(matches!(err, FsdError::Comm(_)), "attempt {i}: {err}");
    }
    let snap = service.health_snapshot();
    assert_eq!(snap.direct.state, BreakerState::Open, "{snap:?}");
    assert!(snap.direct.error_rate > 0.5, "{snap:?}");
    // Failed attempts are billed — the service accounted their meters.
    assert!(service.failed_attempt_bill().lambda.invocations > 0);

    // While open (cooldown = 4 consults), Auto degrades direct → hybrid
    // and keeps serving correct results on the healthy transport.
    for i in 0..3 {
        let report = service
            .submit_batched(&auto_req)
            .unwrap_or_else(|e| panic!("degraded run {i}: {e}"));
        assert_eq!(report.variant, Variant::Hybrid, "degraded run {i}");
        assert_eq!(report.first_output(), &expected);
    }
    // Cooldown drained: the breaker half-opens and Auto probes direct
    // again; two clean probes close it and forgive the error history.
    for i in 0..2 {
        let report = service
            .submit_batched(&auto_req)
            .unwrap_or_else(|e| panic!("probe run {i}: {e}"));
        assert_eq!(report.variant, Variant::Direct, "probe run {i}");
        assert_eq!(report.first_output(), &expected);
    }
    let snap = service.health_snapshot();
    assert_eq!(snap.direct.state, BreakerState::Closed, "{snap:?}");
    assert_eq!(snap.direct.error_rate, 0.0, "recovery forgives history");
    assert_eq!(service.resolve_variant(&auto_req), Variant::Direct);
    // Failure or not, every request released its flow state.
    service.env().assert_no_residue();
    assert_eq!(service.env().meter().tracked_flows(), 0);
    assert_eq!(service.platform().lambda_meter().tracked_flows(), 0);
}

#[test]
fn crash_mid_coalition_fails_one_member_and_finishes_the_rest() {
    let _guard = engine_guard();
    // A warm-tree instance dying *mid-coalition* must fail only the member
    // it was serving; the tree is discarded and the remaining members
    // finish on a fresh launch.
    use fsd_inference::core::{BatchedRequest, FsdService};

    let spec = DnnSpec {
        neurons: 96,
        layers: 2,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: 37,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(8, 37));
    let expected = dnn.serial_inference(&inputs);
    let service = ServiceBuilder::new(dnn)
        .deterministic(37)
        .warm_pool(2, u64::MAX)
        .build();
    let req = || BatchedRequest {
        variant: Variant::Queue,
        workers: 2,
        memory_mb: 1769,
        batches: vec![inputs.clone()],
    };
    // Park a tree, then arm a mid-request kill on its rank 1 through the
    // unified fault surface.
    service
        .submit_batched(&req())
        .expect("cold run parks the tree");
    assert!(
        service.inject_fault(FsdService::warm_worker_fault(Variant::Queue, 2, 1769, 1)),
        "a parked tree must match the injection shape"
    );

    let results = service.submit_coalesced(&[req(), req(), req()]);
    assert_eq!(results.len(), 3);
    let failed: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_err())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        failed,
        vec![0],
        "exactly the member served by the dying instance fails: {results:?}"
    );
    for (i, r) in results.iter().enumerate().skip(1) {
        let report = r
            .as_ref()
            .unwrap_or_else(|e| panic!("member {i} wedged: {e}"));
        assert_eq!(report.first_output(), &expected, "member {i} wrong output");
    }
    let stats = service.warm_pool_stats().expect("pool enabled");
    assert_eq!(stats.discarded_poisoned, 1, "{stats:?}");
    // The poisoned tree is never re-shelved; the surviving members park
    // exactly one fresh replacement.
    assert_eq!(stats.idle, 1, "{stats:?}");
    // Success or failure, every member released its flow-scoped state.
    service.env().assert_no_residue();
    assert_eq!(service.env().meter().tracked_flows(), 0);
    assert_eq!(service.platform().lambda_meter().tracked_flows(), 0);
}

#[test]
fn cold_start_skew_does_not_break_early_layers() {
    let _guard = engine_guard();
    // Exaggerated cold starts stagger worker launch times wildly; early
    // senders' messages must wait safely for late-starting receivers.
    let spec = DnnSpec {
        neurons: 96,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: 34,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(12, 34));
    let expected = dnn.serial_inference(&inputs);
    let mut cloud = CloudConfig::deterministic(34);
    cloud.latency.lambda_cold_start_us = 5_000_000; // 5 s cold starts
    let service = ServiceBuilder::new(dnn)
        .deterministic(34)
        .cloud(cloud)
        .branching(1) // a chain: maximal start-time skew
        .build();
    let report = service
        .submit(&InferenceRequest {
            variant: Variant::Queue,
            workers: 4,
            memory_mb: 1769,
            inputs,
        })
        .expect("skewed run");
    assert_eq!(report.first_output(), &expected);
    // The chain launch forces ≥ 3 cold-start generations of skew.
    assert!(report.latency >= VirtualTime::from_secs_f64(15.0));
}
