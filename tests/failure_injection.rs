//! Failure injection and robustness: straggler redelivery, jittered
//! (non-deterministic-latency) regions, degraded polling, and corrupted
//! payload handling. Correctness must never depend on fair-weather timing.

use fsd_inference::comm::{
    CloudConfig, CloudEnv, LatencyModel, Message, MessageAttributes, PollKind, VClock, VirtualTime,
};
use fsd_inference::core::{InferenceRequest, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use std::sync::{Arc, Mutex, MutexGuard};

static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn engine_guard() -> MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn msg(source: u32, body: &[u8]) -> Message {
    Message {
        attributes: MessageAttributes {
            flow: 0,
            source,
            target: 0,
            layer: 0,
            total_chunks: 1,
            batch: 0,
        },
        body: body.to_vec(),
    }
}

#[test]
fn visibility_timeout_redelivers_undeleted_messages() {
    // A consumer crash after receive (before delete) must not lose data:
    // the visibility timeout expires and the message is redelivered.
    let env = CloudEnv::new(CloudConfig::deterministic(1));
    let q = env.queue("crash-test");
    q.enqueue(VirtualTime::ZERO, msg(1, b"precious"));
    let mut clock = VClock::default();
    let (got, _) = q.receive_wait(&mut clock, 1.0);
    assert_eq!(got.len(), 1);
    // Consumer "crashes" here — no delete. Expiry returns it to the queue.
    q.requeue_in_flight();
    let (again, _) = q.receive_wait(&mut clock, 1.0);
    assert_eq!(again.len(), 1);
    assert_eq!(again[0].message.body, b"precious");
    assert_ne!(
        again[0].handle, got[0].handle,
        "redelivery issues a fresh handle"
    );
}

#[test]
fn short_polling_eventually_drains_but_wastes_calls() {
    // The paper's finding: short polling misses visible messages (subset of
    // servers) and therefore needs more calls for the same work.
    let env = CloudEnv::new(CloudConfig::deterministic(2));
    let q = env.queue("short-poll");
    for i in 0..30 {
        q.enqueue(VirtualTime::ZERO, msg(i, b"x"));
    }
    let mut clock = VClock::default();
    let mut received = 0;
    let mut calls = 0;
    while received < 30 {
        let got = q.poll(&mut clock, PollKind::Short);
        calls += 1;
        received += got.len();
        let handles: Vec<u64> = got.iter().map(|m| m.handle).collect();
        if !handles.is_empty() {
            q.delete_batch(&mut clock, &handles);
        }
        assert!(calls < 1000, "short polling never drained the queue");
    }
    // Long polling would need ceil(30/10) = 3 receive calls.
    assert!(
        calls > 3,
        "short polling should be strictly less efficient, used {calls} calls"
    );
}

#[test]
fn jittered_latencies_do_not_affect_results() {
    let _guard = engine_guard();
    // Full-noise region (default 15 % jitter): latencies vary, outputs
    // must not.
    let spec = DnnSpec {
        neurons: 96,
        layers: 4,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: 31,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(16, 31));
    let expected = dnn.serial_inference(&inputs);
    // Jittered cloud (default latency noise), pinned seed.
    let cloud = fsd_inference::comm::CloudConfig {
        seed: 31,
        ..Default::default()
    };
    let service = ServiceBuilder::new(dnn).cloud(cloud).build();
    for variant in [Variant::Queue, Variant::Object] {
        let report = service
            .submit(&InferenceRequest {
                variant,
                workers: 4,
                memory_mb: 1769,
                inputs: inputs.clone(),
            })
            .unwrap_or_else(|e| panic!("{variant} under jitter: {e}"));
        assert_eq!(
            report.first_output(),
            &expected,
            "{variant} wrong under jitter"
        );
    }
}

#[test]
fn slow_channel_region_still_correct() {
    let _guard = engine_guard();
    // A degraded region: 10x service latencies. Runs slower, same result.
    let spec = DnnSpec {
        neurons: 96,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: 32,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(12, 32));
    let expected = dnn.serial_inference(&inputs);

    let mut slow = LatencyModel::deterministic();
    slow.sns_publish_us *= 10;
    slow.sns_delivery_us *= 10;
    slow.sqs_poll_us *= 10;
    slow.s3_put_us *= 10;
    slow.s3_get_us *= 10;
    slow.s3_list_us *= 10;

    let mut slow_cloud = CloudConfig::deterministic(32);
    slow_cloud.latency = slow;

    let fast_service = ServiceBuilder::new(dnn.clone()).deterministic(32).build();
    let slow_service = ServiceBuilder::new(dnn)
        .deterministic(32)
        .cloud(slow_cloud)
        .build();
    let req = InferenceRequest {
        variant: Variant::Object,
        workers: 3,
        memory_mb: 1769,
        inputs,
    };
    let fast = fast_service.submit(&req).expect("fast region");
    let slow = slow_service.submit(&req).expect("slow region");
    assert_eq!(fast.first_output(), &expected);
    assert_eq!(slow.first_output(), &expected);
    assert!(
        slow.latency > fast.latency,
        "10x latencies must slow the run: {} vs {}",
        slow.latency,
        fast.latency
    );
}

#[test]
fn corrupted_payload_surfaces_as_comm_error() {
    // A corrupted wire body must produce a clean error, not a wrong result.
    use fsd_inference::sparse::{codec, compress};
    let block = generate_inputs(64, &InputSpec::scaled(8, 33));
    let mut wire_bytes = compress::compress(&codec::encode(&block));
    let last = wire_bytes.len() - 1;
    wire_bytes[last] ^= 0xFF;
    let decompressed = compress::decompress(&wire_bytes);
    match decompressed {
        Err(_) => {} // rejected at the compression frame
        Ok(bytes) => {
            assert!(
                codec::decode(&bytes).is_err(),
                "corruption must not decode cleanly"
            );
        }
    }
}

#[test]
fn scheduler_failed_request_releases_slot_and_does_not_wedge_the_queue() {
    let _guard = engine_guard();
    // The scheduler's failure story: a request that dies mid-flight must
    // release its concurrency slot and let the backlog keep draining. The
    // "broken" model's compute is so slow that any request blows the 900 s
    // FaaS runtime limit (a mid-execution kill, not an admission reject).
    use fsd_inference::core::{BatchedRequest, FsdError, ServiceBuilder};
    use fsd_inference::faas::ComputeModel;
    use fsd_inference::sched::{Priority, SchedulerBuilder, SchedulerConfig};

    let spec = DnnSpec {
        neurons: 64,
        layers: 2,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: 35,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(8, 35));
    let expected = dnn.serial_inference(&inputs);
    let good = Arc::new(ServiceBuilder::new(dnn.clone()).deterministic(35).build());
    let broken = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(35)
            .compute(ComputeModel {
                units_per_sec_per_vcpu: 1e-3, // ~3 hours of virtual time per unit
                parallel_fraction: 0.85,
            })
            .build(),
    );

    // Global cap 1: if the failing request held its slot, nothing behind it
    // could ever run and every wait below would hang.
    let sched = SchedulerBuilder::new(SchedulerConfig::default().global_cap(1))
        .model("broken", broken.clone())
        .model("good", good)
        .build();
    let request = |inputs: &fsd_inference::sparse::SparseRows| BatchedRequest {
        variant: Variant::Serial,
        workers: 1,
        memory_mb: 1769,
        batches: vec![inputs.clone()],
    };
    let doomed = sched
        .enqueue("broken", Priority::Interactive, request(&inputs))
        .expect("admission accepts it — the failure is mid-flight");
    let survivors: Vec<_> = (0..3)
        .map(|i| {
            let class = if i == 1 {
                Priority::Batch
            } else {
                Priority::Interactive
            };
            sched
                .enqueue("good", class, request(&inputs))
                .expect("accepted behind the doomed request")
        })
        .collect();

    match doomed.wait() {
        Err(FsdError::Timeout { elapsed, limit }) => {
            assert!(elapsed > limit, "kill fired past the limit")
        }
        other => panic!("expected a mid-flight timeout, got {other:?}"),
    }
    for (i, t) in survivors.into_iter().enumerate() {
        let report = t
            .wait()
            .unwrap_or_else(|e| panic!("survivor {i} wedged: {e}"));
        assert_eq!(
            report.first_output(),
            &expected,
            "survivor {i} wrong output"
        );
    }

    let stats = sched.stats();
    assert_eq!(stats.failed, 1, "exactly the doomed request failed");
    assert_eq!(stats.completed, 3, "the backlog drained past the failure");
    assert_eq!(stats.inflight, 0, "the failed request released its slot");
    assert_eq!(stats.queued, 0);
    assert!(stats.max_inflight <= 1);
    // The failed request tore down its flow state like any other: no
    // per-flow meter buckets or request resources survive it.
    assert_eq!(broken.env().meter().tracked_flows(), 0);
    assert_eq!(broken.platform().lambda_meter().tracked_flows(), 0);
    assert_eq!(broken.env().queue_count(), 0);
}

#[test]
fn cold_start_skew_does_not_break_early_layers() {
    let _guard = engine_guard();
    // Exaggerated cold starts stagger worker launch times wildly; early
    // senders' messages must wait safely for late-starting receivers.
    let spec = DnnSpec {
        neurons: 96,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: 34,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(12, 34));
    let expected = dnn.serial_inference(&inputs);
    let mut cloud = CloudConfig::deterministic(34);
    cloud.latency.lambda_cold_start_us = 5_000_000; // 5 s cold starts
    let service = ServiceBuilder::new(dnn)
        .deterministic(34)
        .cloud(cloud)
        .branching(1) // a chain: maximal start-time skew
        .build();
    let report = service
        .submit(&InferenceRequest {
            variant: Variant::Queue,
            workers: 4,
            memory_mb: 1769,
            inputs,
        })
        .expect("skewed run");
    assert_eq!(report.first_output(), &expected);
    // The chain launch forces ≥ 3 cold-start generations of skew.
    assert!(report.latency >= VirtualTime::from_secs_f64(15.0));
}
