//! The deterministic scheduler load harness (the `fsd-sched` acceptance
//! test).
//!
//! Each test replays one seeded arrival trace — steady trickle, bursts,
//! and an adversarial large-`P` flood — through a manual-dispatch
//! scheduler three times over (fresh service and scheduler each time) and
//! requires the replays to be **identical**: same admission order, same
//! rejection set, same per-request reports (variant, latency, outputs
//! digest, request-local billing). Determinism holds even though every
//! admitted request executes on real worker-tree threads, because all
//! scheduler-state mutations happen on the driver thread and all request
//! state (flows, meters, virtual clocks) is request-local.
//!
//! On top of reproducibility, each trace asserts the scheduler's
//! invariants: caps never exceeded, FIFO within a class, weighted
//! interleave across classes, and — in the flood — bounded queues
//! rejecting with backpressure.

use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_inference::sched::harness::{replay, ReplayReport};
use fsd_inference::sched::{trace, Arrival, Priority, Scheduler, SchedulerConfig};
use fsd_inference::{core::ServiceBuilder, sched::SchedulerBuilder};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialized with the other engine suites: each replay spawns many real
/// threads itself.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn engine_guard() -> MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// A fresh single-model scheduler in harness mode. Every parallelism the
/// traces use is pre-warmed so replays race on nothing but the request
/// path.
fn fresh_scheduler(seed: u64, cfg: SchedulerConfig) -> Scheduler {
    let spec = DnnSpec {
        neurons: 72,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let service = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(seed)
            .prewarm(1)
            .prewarm(2)
            .prewarm(4)
            .build(),
    );
    SchedulerBuilder::new(cfg.manual())
        .model("m", service)
        .build()
}

/// A harness-mode scheduler over a **warm-pooled** service: every
/// distributed shape the steady trace produces (`Queue` × P ∈ {1, 2}) is
/// pre-warmed `global_cap` times, so a matching request can never miss —
/// the warm/cold split stays a pure function of the trace and the replay
/// digests (which include the launch label) stay bit-identical.
fn fresh_pooled_scheduler(seed: u64, cfg: SchedulerConfig) -> Scheduler {
    use fsd_inference::core::Variant;
    let spec = DnnSpec {
        neurons: 72,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let mut builder = ServiceBuilder::new(dnn)
        .deterministic(seed)
        .prewarm(1)
        .prewarm(2)
        .warm_pool(2 * cfg.global_cap, u64::MAX);
    for p in [1u32, 2] {
        for _ in 0..cfg.global_cap {
            builder = builder.prewarm_tree(Variant::Queue, p, 1769);
        }
    }
    let service = Arc::new(builder.build());
    SchedulerBuilder::new(cfg.manual())
        .model("m", service)
        .build()
}

/// Replays `trace` three times against fresh schedulers; asserts the runs
/// are identical and returns the (canonical) first report.
fn replay_thrice(seed: u64, cfg: SchedulerConfig, trace: &[Arrival]) -> ReplayReport {
    replay_thrice_with(|| fresh_scheduler(seed, cfg), trace)
}

/// [`replay_thrice`] over an arbitrary scheduler factory.
fn replay_thrice_with(fresh: impl Fn() -> Scheduler, trace: &[Arrival]) -> ReplayReport {
    let first = replay(&fresh(), "m", trace);
    for run in 1..3 {
        let again = replay(&fresh(), "m", trace);
        assert_eq!(
            first.admission_order, again.admission_order,
            "run {run}: admission order diverged"
        );
        assert_eq!(
            first.rejected, again.rejected,
            "run {run}: rejection set diverged"
        );
        assert_eq!(
            first.outcomes, again.outcomes,
            "run {run}: per-request reports diverged"
        );
        assert_eq!(first, again, "run {run}: replay reports diverged");
    }
    first
}

/// Shared invariants every trace must satisfy.
fn assert_invariants(report: &ReplayReport, cfg: &SchedulerConfig) {
    assert!(
        report.stats.max_inflight <= cfg.global_cap,
        "global cap {} exceeded: {}",
        cfg.global_cap,
        report.stats.max_inflight
    );
    // FIFO within each class: admission seqs strictly increase.
    for class in Priority::ALL {
        let seqs = report.admissions_of(class);
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "{class} admissions out of FIFO order: {seqs:?}"
        );
    }
    // Every accepted request finished and was accounted.
    assert_eq!(
        report.outcomes.len() as u64,
        report.stats.total_admitted(),
        "admitted requests must all be harvested"
    );
    assert_eq!(report.stats.queued, 0);
    assert_eq!(report.stats.inflight, 0);
}

#[test]
fn auto_under_the_scheduler_routes_like_sequential_and_matches_outputs() {
    let _guard = engine_guard();
    // `Variant::Auto` resolves through the §IV-C rules per request; the
    // scheduler must not change that. Run mixed-size Auto requests twice —
    // sequentially against a bare service, then concurrently through an
    // auto-dispatch scheduler over an identical service — and require the
    // same resolved channel and byte-identical outputs for every request.
    use fsd_inference::core::{BatchedRequest, Variant};
    use fsd_inference::sched::Ticket;

    let spec = DnnSpec {
        neurons: 72,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: 23,
    };
    let fresh_service = || {
        Arc::new(
            ServiceBuilder::new(Arc::new(generate_dnn(&spec)))
                .deterministic(23)
                .prewarm(1)
                .prewarm(2)
                .prewarm(3)
                .build(),
        )
    };
    let requests: Vec<BatchedRequest> = (0..6)
        .map(|i| BatchedRequest {
            variant: Variant::Auto,
            workers: 1 + (i % 3) as u32,
            memory_mb: 1769,
            batches: vec![generate_inputs(
                spec.neurons,
                &InputSpec::scaled(4 + 3 * i, 23 + i as u64),
            )],
        })
        .collect();

    let sequential_service = fresh_service();
    let sequential: Vec<_> = requests
        .iter()
        .map(|r| {
            let report = sequential_service.submit_batched(r).expect("sequential");
            (report.variant, report.outputs)
        })
        .collect();

    let service = fresh_service();
    let sched = Scheduler::wrap(service.clone(), SchedulerConfig::default().global_cap(3));
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| {
            sched
                .enqueue_default(Priority::Interactive, r.clone())
                .expect("accepted")
        })
        .collect();
    for (i, (t, req)) in tickets.into_iter().zip(&requests).enumerate() {
        let report = t.wait().expect("scheduled run");
        assert_ne!(report.variant, Variant::Auto, "Auto must resolve");
        assert_eq!(
            report.variant,
            service.resolve_variant(req),
            "request {i}: scheduler changed the §IV-C routing"
        );
        assert_eq!(
            (report.variant, &report.outputs),
            (sequential[i].0, &sequential[i].1),
            "request {i}: concurrent Auto diverged from sequential"
        );
    }
    sched.shutdown();
    sched.drain();
    assert_eq!(sched.stats().completed, 6);
}

#[test]
fn steady_trace_is_deterministic_and_unthrottled() {
    let _guard = engine_guard();
    let cfg = SchedulerConfig::default()
        .global_cap(3)
        .queue_capacity(8)
        .weights(3, 1);
    let trace = trace::steady(12, 250_000, 11);
    let report = replay_thrice(11, cfg, &trace);
    assert_invariants(&report, &cfg);
    // A trickle under capacity sees no backpressure and no failures.
    assert!(report.rejected.is_empty(), "steady trace must not reject");
    assert_eq!(report.stats.total_admitted(), 12);
    assert_eq!(report.stats.failed, 0);
    for outcome in &report.outcomes {
        let digest = outcome.result.as_ref().expect("steady requests succeed");
        assert!(digest.latency_us > 0);
        assert!(digest.invocations > 0, "lambda billing is request-local");
    }
}

#[test]
fn warm_pool_replays_are_deterministic_and_all_warm() {
    let _guard = engine_guard();
    use fsd_inference::core::{LaunchPath, Variant};
    let cfg = SchedulerConfig::default()
        .global_cap(3)
        .queue_capacity(8)
        .weights(3, 1);
    let trace = trace::steady(12, 250_000, 19);
    let report = replay_thrice_with(|| fresh_pooled_scheduler(19, cfg), &trace);
    assert_invariants(&report, &cfg);
    assert!(report.rejected.is_empty(), "steady trace must not reject");
    assert_eq!(report.stats.failed, 0);
    // With the pool pre-warmed past the concurrency cap, every distributed
    // request is a warm hit — zero invocations, label included in the
    // bit-identical digests — while Serial requests stay cold.
    let mut warm = 0;
    for outcome in &report.outcomes {
        let digest = outcome.result.as_ref().expect("steady requests succeed");
        match digest.variant {
            Variant::Queue => {
                assert_eq!(digest.launch, LaunchPath::WarmHit, "{digest:?}");
                assert_eq!(digest.invocations, 0, "warm hits invoke nothing");
                warm += 1;
            }
            _ => {
                assert_eq!(digest.launch, LaunchPath::ColdStart, "{digest:?}");
                assert!(digest.invocations > 0);
            }
        }
        assert!(digest.latency_us > 0);
    }
    assert_eq!(warm, 8, "the steady trace carries 8 Queue requests");
    assert_eq!(report.stats.warm_hits, 8);
    assert_eq!(report.stats.cold_starts, 4);
}

#[test]
fn bursty_trace_interleaves_classes_by_weight() {
    let _guard = engine_guard();
    let cfg = SchedulerConfig::default()
        .global_cap(2)
        .queue_capacity(12)
        .weights(2, 1);
    let trace = trace::bursty(2, 9, 600_000, 13);
    let report = replay_thrice(13, cfg, &trace);
    assert_invariants(&report, &cfg);
    assert!(report.rejected.is_empty(), "bursts fit the bounded queues");
    assert_eq!(report.stats.total_admitted(), 18);
    // Each burst backlogs both classes, so the weighted round-robin must
    // interleave them from the start: batch service begins within the
    // first weight-window instead of after the interactive backlog.
    let window = 1 + cfg.weights[0] as usize;
    assert!(
        report.admitted_classes[..window].contains(&Priority::Batch),
        "batch starved at the head: {:?}",
        &report.admitted_classes[..window]
    );
    assert!(
        report.admitted_classes[..window].contains(&Priority::Interactive),
        "interactive missing from the head window"
    );
    // Weighted share over the saturated phase: interactive may lead, but
    // batch throughput stays within its configured proportion.
    let batch_admitted = report
        .admitted_classes
        .iter()
        .filter(|c| **c == Priority::Batch)
        .count();
    assert_eq!(batch_admitted, 6, "2 bursts × 3 batch arrivals each");
}

#[test]
fn large_p_flood_trips_backpressure_without_starving() {
    let _guard = engine_guard();
    let cfg = SchedulerConfig::default()
        .global_cap(3)
        .queue_capacity(4)
        .weights(2, 1);
    let trace = trace::flood(20, 4, 17);
    let report = replay_thrice(17, cfg, &trace);
    assert_invariants(&report, &cfg);

    // The flood arrives in one instant: only `queue_capacity` requests per
    // class fit, the rest must be rejected with explicit backpressure —
    // never buffered without bound.
    let accepted = report.stats.total_admitted() as usize;
    assert_eq!(accepted, 2 * cfg.queue_capacity, "both class queues filled");
    assert_eq!(
        report.rejected.len(),
        trace.len() - accepted,
        "every non-fitting arrival was rejected"
    );
    assert!(
        report.stats.total_rejected() >= 8,
        "flood must visibly trip backpressure, rejected only {}",
        report.stats.total_rejected()
    );
    // Rejection preserves arrival order within the trace.
    assert!(report.rejected.windows(2).all(|w| w[0] < w[1]));

    // Interactive arrivals kept being admitted despite the batch-heavy
    // flood, and every accepted large-P request ran to completion.
    assert!(report.admitted_classes.contains(&Priority::Interactive));
    assert_eq!(report.stats.failed, 0);
    for outcome in &report.outcomes {
        let digest = outcome.result.as_ref().expect("accepted flood runs");
        assert_eq!(digest.workers, 4, "flood requests are large-P");
    }
}
