//! Predictive pre-warming acceptance: on the seeded bursty trace, a
//! predictor-driven scheduler must land strictly more requests on warm
//! trees than the same pool running purely reactively — and the
//! predictive replay itself must stay bit-identical across runs.
//!
//! Determinism setup: manual dispatch with `global_cap = 1` totally
//! orders every pool mutation. Within an arrival group the driver
//! enqueues (each enqueue feeds the predictor, whose pre-warms launch
//! synchronously on the driver thread) before any admission; between
//! groups the driver harvests the in-flight request — whose tree checkin
//! completes before its result is delivered — before enqueuing more. The
//! warm/cold label of every request is therefore a pure function of
//! `(trace, config)`.

use fsd_inference::core::ServiceBuilder;
use fsd_inference::model::{generate_dnn, DnnSpec};
use fsd_inference::sched::harness::{replay, ReplayReport};
use fsd_inference::sched::{
    trace, Arrival, PredictorConfig, Scheduler, SchedulerBuilder, SchedulerConfig,
};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialized with the other engine suites: every replay spawns real
/// worker threads.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn engine_guard() -> MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const SEED: u64 = 29;

fn spec() -> DnnSpec {
    DnnSpec {
        neurons: 72,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed: SEED,
    }
}

/// The bursty trace both schedulers replay: 3 bursts of 8, carrying four
/// distinct distributed shapes (Queue/Object × P ∈ {1, 2}) per burst.
fn bursty_trace() -> Vec<Arrival> {
    trace::bursty(3, 8, 400_000, SEED)
}

/// A manual-dispatch scheduler over an auto-sized warm pool; `predictive`
/// toggles the predictor, everything else is identical.
fn fresh_scheduler(predictive: bool) -> Scheduler {
    let dnn = Arc::new(generate_dnn(&spec()));
    let service = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(SEED)
            .prewarm(1)
            .prewarm(2)
            // Four shapes bursting up to two deep — the predictor's
            // default envelope, sized by the same formula its targets
            // assume.
            .auto_warm_pool(4, 2)
            .build(),
    );
    let mut cfg = SchedulerConfig::default()
        .global_cap(1)
        .queue_capacity(64)
        .manual();
    if predictive {
        // Window of one burst (8 arrivals), so in-window counts equal the
        // burst depth per shape.
        cfg = cfg.predictive(PredictorConfig::default().window(8).max_warm(8));
    }
    SchedulerBuilder::new(cfg).model("m", service).build()
}

fn run(predictive: bool) -> ReplayReport {
    replay(&fresh_scheduler(predictive), "m", &bursty_trace())
}

#[test]
fn predictor_beats_reactive_warm_hit_rate_on_the_bursty_trace() {
    let _guard = engine_guard();
    let reactive = run(false);
    let predictive = run(true);

    // Both runs completed everything.
    assert!(reactive.rejected.is_empty());
    assert!(predictive.rejected.is_empty());
    assert_eq!(reactive.stats.failed, 0);
    assert_eq!(predictive.stats.failed, 0);

    // The reactive pool pays at least one cold start per distinct shape
    // (nothing is parked before traffic arrives); the predictor pre-warms
    // each shape at its first in-burst arrival, before admission runs.
    assert!(
        reactive.stats.cold_starts > predictive.stats.cold_starts,
        "reactive cold starts {} must exceed predictive {}",
        reactive.stats.cold_starts,
        predictive.stats.cold_starts
    );
    assert!(
        predictive.stats.warm_hits > reactive.stats.warm_hits,
        "predictive warm hits {} must exceed reactive {} — the \
         acceptance criterion",
        predictive.stats.warm_hits,
        reactive.stats.warm_hits
    );
    assert!(
        predictive.stats.prewarmed > 0,
        "the predictor must actually have pre-warmed trees"
    );
    assert_eq!(
        reactive.stats.prewarmed, 0,
        "the reactive run must not pre-warm"
    );

    // Mean virtual latency drops with the hit rate: warm hits skip the
    // whole launch bill.
    let mean = |r: &ReplayReport| {
        let (sum, n) = r
            .outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok())
            .fold((0u64, 0u64), |(s, n), d| (s + d.latency_us, n + 1));
        sum / n.max(1)
    };
    assert!(
        mean(&predictive) < mean(&reactive),
        "predictive mean latency {}µs must beat reactive {}µs",
        mean(&predictive),
        mean(&reactive)
    );
}

#[test]
fn predictive_replays_are_bit_identical() {
    let _guard = engine_guard();
    let first = run(true);
    for attempt in 1..3 {
        let again = run(true);
        assert_eq!(
            first.admission_order, again.admission_order,
            "run {attempt}: admission order diverged"
        );
        assert_eq!(
            first.outcomes, again.outcomes,
            "run {attempt}: per-request reports (incl. warm/cold labels) diverged"
        );
        assert_eq!(first, again, "run {attempt}: replay reports diverged");
    }
    // The warm/cold split itself is part of the deterministic contract.
    assert!(first.stats.warm_hits > 0);
    assert!(first.stats.prewarmed > 0);
}

/// Regression (scheduler-hint sweep): the predictor must observe only
/// *admitted* requests. A flood that overflows the bounded queues used to
/// risk feeding every rejected `Overloaded` arrival into the shape
/// counters, inflating pre-warm targets far past what will ever run. Two
/// floods sharing a seed accept the identical prefix (the rng stream is
/// sequential per arrival), so tripling the rejected tail must change
/// *nothing* about pre-warming.
#[test]
fn rejected_flood_arrivals_do_not_inflate_prewarm_targets() {
    let _guard = engine_guard();
    let run_flood = |n: usize| {
        let dnn = Arc::new(generate_dnn(&spec()));
        let service = Arc::new(
            ServiceBuilder::new(dnn)
                .deterministic(SEED)
                .prewarm(4)
                .auto_warm_pool(4, 2)
                .build(),
        );
        let cfg = SchedulerConfig::default()
            .global_cap(1)
            .queue_capacity(4)
            .manual()
            .predictive(PredictorConfig::default().window(8).max_warm(8));
        let sched = SchedulerBuilder::new(cfg).model("m", service).build();
        replay(&sched, "m", &trace::flood(n, 4, SEED))
    };
    let small = run_flood(16);
    let large = run_flood(48);

    // Both floods overflow; the larger one rejects strictly more.
    assert!(small.stats.total_rejected() > 0, "flood must overflow");
    assert!(large.stats.total_rejected() > small.stats.total_rejected());
    // The accepted prefix is identical, so the admitted work is identical…
    assert_eq!(small.stats.total_admitted(), large.stats.total_admitted());
    assert_eq!(small.admission_order, large.admission_order);
    // …and so must be the predictor's output: rejected arrivals are
    // invisible to it, no matter how many there are.
    assert!(
        small.stats.prewarmed > 0,
        "predictor must engage on the flood"
    );
    assert_eq!(
        small.stats.prewarmed, large.stats.prewarmed,
        "rejected arrivals inflated pre-warm targets: {} -> {}",
        small.stats.prewarmed, large.stats.prewarmed
    );
    assert_eq!(small.stats.warm_hits, large.stats.warm_hits);
    assert_eq!(small.stats.cold_starts, large.stats.cold_starts);
}

#[test]
fn quiescence_evicts_prewarmed_trees_on_drain_ticks() {
    let _guard = engine_guard();
    use fsd_inference::core::{BatchedRequest, Variant};
    use fsd_inference::model::{generate_inputs, InputSpec};
    use fsd_inference::sched::Priority;

    let dnn = Arc::new(generate_dnn(&spec()));
    let service = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(SEED)
            .prewarm(2)
            .auto_warm_pool(2, 2)
            .build(),
    );
    // An aggressive quiescence horizon: a shape unseen for 4 arrivals is
    // predicted dead.
    let cfg = SchedulerConfig::default()
        .global_cap(1)
        .manual()
        .predictive(PredictorConfig::default().window(4).quiet_after(4));
    let sched = SchedulerBuilder::new(cfg)
        .model("m", service.clone())
        .build();
    let inputs = generate_inputs(72, &InputSpec::scaled(8, SEED));
    let req = |variant| BatchedRequest {
        variant,
        workers: 2,
        memory_mb: 1769,
        batches: vec![inputs.clone()],
    };

    // One Queue arrival pre-warms its shape…
    let t = sched
        .enqueue_default(Priority::Interactive, req(Variant::Queue))
        .expect("accepted");
    assert_eq!(service.warm_idle_trees(Variant::Queue, 2, 1769), 1);
    sched.dispatch();
    t.wait().expect("runs");
    // …then Serial-only traffic ages it past the horizon…
    for _ in 0..4 {
        let t = sched
            .enqueue_default(Priority::Interactive, req(Variant::Serial))
            .expect("accepted");
        sched.dispatch();
        t.wait().expect("runs");
    }
    // …and the next drain tick applies the standing eviction.
    sched.dispatch();
    assert_eq!(
        service.warm_idle_trees(Variant::Queue, 2, 1769),
        0,
        "quiescent traffic must converge to zero pre-warms"
    );
    assert!(sched.stats().predictor_evicted >= 1);
}
