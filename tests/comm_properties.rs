//! Property-based tests on the simulated communication services: billing
//! exactness, message conservation (no loss, no duplication), and quota
//! enforcement under arbitrary traffic patterns.

use fsd_inference::comm::{
    bucket_name, quota, CloudConfig, CloudEnv, Message, MessageAttributes, VClock, VirtualTime,
};
use fsd_inference::core::{ChannelOptions, ChannelRegistry, RecvTracker, Tag};
use fsd_inference::faas::{ComputeModel, FaasError, FaasPlatform, FunctionConfig, WorkerCtx};
use fsd_inference::sparse::SparseRows;
use proptest::prelude::*;
use std::sync::Arc;

mod common;

/// Runs `body` inside one simulated worker invocation.
fn with_ctx<T: Send + 'static>(
    env: Arc<CloudEnv>,
    body: impl FnOnce(&mut WorkerCtx) -> Result<T, FaasError> + Send + 'static,
) -> T {
    let platform = FaasPlatform::new(env, ComputeModel::default());
    platform
        .invoke(FunctionConfig::worker("t", 2048), VirtualTime::ZERO, body)
        .join()
        .expect("test body ok")
        .0
}

fn msg(source: u32, target: u32, body: Vec<u8>) -> Message {
    Message {
        attributes: MessageAttributes {
            flow: 0,
            source,
            target,
            layer: 0,
            total_chunks: 1,
            batch: 0,
        },
        body,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sns_billing_is_exact_64k_increments(
        sizes in proptest::collection::vec(0usize..80_000, 1..10),
    ) {
        let env = CloudEnv::new(CloudConfig::deterministic(1));
        let q = env.queue("t");
        env.pubsub().subscribe(0, 0, 0, q).expect("subscribe");
        let total: usize = sizes.iter().sum();
        prop_assume!(total <= quota::MAX_PUBLISH_BYTES);
        let batch: Vec<Message> = sizes.iter().map(|&s| msg(0, 0, vec![7u8; s])).collect();
        let mut clock = VClock::default();
        let billed = env.pubsub().publish_batch(0, &mut clock, batch).expect("publish");
        let expected = (total.div_ceil(quota::BILLING_INCREMENT)).max(1) as u64;
        prop_assert_eq!(billed, expected);
        prop_assert_eq!(env.snapshot().sns_publish_requests, expected);
        prop_assert_eq!(env.snapshot().sns_delivered_bytes, total as u64);
    }

    #[test]
    fn queue_conserves_messages(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..40),
    ) {
        let env = CloudEnv::new(CloudConfig::deterministic(2));
        let q = env.queue("conserve");
        for (i, b) in bodies.iter().enumerate() {
            q.enqueue(VirtualTime::from_micros(i as u64), msg(i as u32, 0, b.clone()));
        }
        let mut clock = VClock::default();
        let mut got: Vec<(u32, Vec<u8>)> = Vec::new();
        while got.len() < bodies.len() {
            let (msgs, _) = q.receive_wait(&mut clock, 1.0);
            prop_assert!(!msgs.is_empty(), "queue lost messages");
            prop_assert!(msgs.len() <= quota::MAX_BATCH_MESSAGES);
            let handles: Vec<u64> = msgs.iter().map(|m| m.handle).collect();
            for m in msgs {
                got.push((m.message.attributes.source, m.message.body));
            }
            q.delete_batch(&mut clock, &handles);
        }
        // Exactly once, order preserved (single consumer, FIFO).
        prop_assert_eq!(got.len(), bodies.len());
        for (i, (src, body)) in got.iter().enumerate() {
            prop_assert_eq!(*src, i as u32);
            prop_assert_eq!(body, &bodies[i]);
        }
        prop_assert_eq!(q.visible_len(), 0);
        prop_assert_eq!(q.in_flight_len(), 0);
    }

    #[test]
    fn object_store_meter_matches_operations(
        keys in proptest::collection::btree_set("[a-z]{1,8}", 1..20),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let env = CloudEnv::new(CloudConfig::deterministic(3));
        let store = env.object_store();
        let bucket = bucket_name(0);
        let mut clock = VClock::default();
        for k in &keys {
            store.put(&bucket, k, body.clone(), &mut clock).expect("put");
        }
        for k in &keys {
            let got = store.get(&bucket, k, &mut clock).expect("get");
            prop_assert_eq!(&got[..], &body[..]);
        }
        let snap = env.snapshot();
        prop_assert_eq!(snap.s3_put_requests, keys.len() as u64);
        prop_assert_eq!(snap.s3_get_requests, keys.len() as u64);
        prop_assert_eq!(snap.s3_put_bytes, (keys.len() * body.len()) as u64);
        prop_assert_eq!(store.object_count(&bucket), keys.len());
    }

    #[test]
    fn oversized_publishes_always_rejected(
        extra in 1usize..100_000,
        n_msgs in 1usize..4,
    ) {
        let env = CloudEnv::new(CloudConfig::deterministic(4));
        let per = (quota::MAX_PUBLISH_BYTES + extra) / n_msgs + 1;
        let batch: Vec<Message> = (0..n_msgs).map(|i| msg(i as u32, 0, vec![0u8; per])).collect();
        let mut clock = VClock::default();
        let before = env.snapshot();
        let res = env.pubsub().publish_batch(0, &mut clock, batch);
        prop_assert!(res.is_err(), "oversized batch accepted");
        // Rejected calls must not bill or deliver anything.
        prop_assert_eq!(env.snapshot(), before);
    }

    #[test]
    fn selected_channel_conserves_arbitrary_payloads(
        seed in 1u64..1000,
        rows in proptest::collection::vec((0u32..64, 1usize..40), 1..6),
    ) {
        // The CI channel matrix points this at queue, object and hybrid in
        // turn: arbitrary per-row payloads must arrive bit-identically,
        // whatever transport (and, for hybrid, whatever spill decisions)
        // carried them.
        let env = CloudEnv::new(CloudConfig::deterministic(seed));
        let variant = common::test_variant();
        let channel = ChannelRegistry::with_builtins()
            .get(variant.channel_name().expect("channel variant"))
            .expect("builtin provider")
            .provision(&env, 2, ChannelOptions { spill_threshold: 512, ..ChannelOptions::default() }, 0);
        let mut sent = SparseRows::new(64);
        for (pos, &(id_off, nnz)) in rows.iter().enumerate() {
            let id = pos as u32 * 64 + id_off; // strictly increasing ids
            let cols: Vec<u32> = (0..nnz as u32).collect();
            let vals: Vec<f32> = (0..nnz).map(|j| (j as f32) * 0.31 + seed as f32).collect();
            sent.push_row(id, &cols, &vals);
        }
        let sent2 = sent.clone();
        let ch_send = channel.clone();
        with_ctx(env.clone(), move |ctx| {
            ch_send.send_layer(ctx, Tag::Layer(0), 0, &[(1, sent2)])
        });
        let ch_recv = channel.clone();
        let got = with_ctx(env.clone(), move |ctx| {
            let mut tracker = RecvTracker::expecting([0u32]);
            ch_recv.receive_all(ctx, Tag::Layer(0), 1, &mut tracker)
        });
        let mut merged = SparseRows::new(64);
        for (_, block) in got {
            merged.merge(&block);
        }
        prop_assert_eq!(merged, sent);
        // Teardown leaves the region exactly as found, on every transport.
        channel.teardown();
        prop_assert_eq!(env.queue_count(), 0);
        for i in 0..env.config().n_buckets {
            prop_assert_eq!(env.object_store().object_count(&bucket_name(i)), 0);
        }
    }

    #[test]
    fn clock_joins_are_monotone(
        stamps in proptest::collection::vec(0u64..10_000_000, 1..50),
    ) {
        let mut clock = VClock::default();
        let mut last = VirtualTime::ZERO;
        for s in stamps {
            clock.observe(VirtualTime::from_micros(s));
            prop_assert!(clock.now() >= last, "clock moved backwards");
            prop_assert!(clock.now() >= VirtualTime::from_micros(s));
            last = clock.now();
        }
    }
}
