//! Property-based tests on the simulated communication services: billing
//! exactness, message conservation (no loss, no duplication), and quota
//! enforcement under arbitrary traffic patterns.

use fsd_inference::comm::{
    bucket_name, quota, CloudConfig, CloudEnv, Message, MessageAttributes, VClock, VirtualTime,
};
use proptest::prelude::*;

fn msg(source: u32, target: u32, body: Vec<u8>) -> Message {
    Message {
        attributes: MessageAttributes {
            flow: 0,
            source,
            target,
            layer: 0,
            total_chunks: 1,
            batch: 0,
        },
        body,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sns_billing_is_exact_64k_increments(
        sizes in proptest::collection::vec(0usize..80_000, 1..10),
    ) {
        let env = CloudEnv::new(CloudConfig::deterministic(1));
        let q = env.queue("t");
        env.pubsub().subscribe(0, 0, 0, q).expect("subscribe");
        let total: usize = sizes.iter().sum();
        prop_assume!(total <= quota::MAX_PUBLISH_BYTES);
        let batch: Vec<Message> = sizes.iter().map(|&s| msg(0, 0, vec![7u8; s])).collect();
        let mut clock = VClock::default();
        let billed = env.pubsub().publish_batch(0, &mut clock, batch).expect("publish");
        let expected = (total.div_ceil(quota::BILLING_INCREMENT)).max(1) as u64;
        prop_assert_eq!(billed, expected);
        prop_assert_eq!(env.snapshot().sns_publish_requests, expected);
        prop_assert_eq!(env.snapshot().sns_delivered_bytes, total as u64);
    }

    #[test]
    fn queue_conserves_messages(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..40),
    ) {
        let env = CloudEnv::new(CloudConfig::deterministic(2));
        let q = env.queue("conserve");
        for (i, b) in bodies.iter().enumerate() {
            q.enqueue(VirtualTime::from_micros(i as u64), msg(i as u32, 0, b.clone()));
        }
        let mut clock = VClock::default();
        let mut got: Vec<(u32, Vec<u8>)> = Vec::new();
        while got.len() < bodies.len() {
            let (msgs, _) = q.receive_wait(&mut clock, 1.0);
            prop_assert!(!msgs.is_empty(), "queue lost messages");
            prop_assert!(msgs.len() <= quota::MAX_BATCH_MESSAGES);
            let handles: Vec<u64> = msgs.iter().map(|m| m.handle).collect();
            for m in msgs {
                got.push((m.message.attributes.source, m.message.body));
            }
            q.delete_batch(&mut clock, &handles);
        }
        // Exactly once, order preserved (single consumer, FIFO).
        prop_assert_eq!(got.len(), bodies.len());
        for (i, (src, body)) in got.iter().enumerate() {
            prop_assert_eq!(*src, i as u32);
            prop_assert_eq!(body, &bodies[i]);
        }
        prop_assert_eq!(q.visible_len(), 0);
        prop_assert_eq!(q.in_flight_len(), 0);
    }

    #[test]
    fn object_store_meter_matches_operations(
        keys in proptest::collection::btree_set("[a-z]{1,8}", 1..20),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let env = CloudEnv::new(CloudConfig::deterministic(3));
        let store = env.object_store();
        let bucket = bucket_name(0);
        let mut clock = VClock::default();
        for k in &keys {
            store.put(&bucket, k, body.clone(), &mut clock).expect("put");
        }
        for k in &keys {
            let got = store.get(&bucket, k, &mut clock).expect("get");
            prop_assert_eq!(&got[..], &body[..]);
        }
        let snap = env.snapshot();
        prop_assert_eq!(snap.s3_put_requests, keys.len() as u64);
        prop_assert_eq!(snap.s3_get_requests, keys.len() as u64);
        prop_assert_eq!(snap.s3_put_bytes, (keys.len() * body.len()) as u64);
        prop_assert_eq!(store.object_count(&bucket), keys.len());
    }

    #[test]
    fn oversized_publishes_always_rejected(
        extra in 1usize..100_000,
        n_msgs in 1usize..4,
    ) {
        let env = CloudEnv::new(CloudConfig::deterministic(4));
        let per = (quota::MAX_PUBLISH_BYTES + extra) / n_msgs + 1;
        let batch: Vec<Message> = (0..n_msgs).map(|i| msg(i as u32, 0, vec![0u8; per])).collect();
        let mut clock = VClock::default();
        let before = env.snapshot();
        let res = env.pubsub().publish_batch(0, &mut clock, batch);
        prop_assert!(res.is_err(), "oversized batch accepted");
        // Rejected calls must not bill or deliver anything.
        prop_assert_eq!(env.snapshot(), before);
    }

    #[test]
    fn clock_joins_are_monotone(
        stamps in proptest::collection::vec(0u64..10_000_000, 1..50),
    ) {
        let mut clock = VClock::default();
        let mut last = VirtualTime::ZERO;
        for s in stamps {
            clock.observe(VirtualTime::from_micros(s));
            prop_assert!(clock.now() >= last, "clock moved backwards");
            prop_assert!(clock.now() >= VirtualTime::from_micros(s));
            last = clock.now();
        }
    }
}
