//! Collectives (barrier / reduce) over both serverless channels, at
//! varying worker counts — the MPI-style primitives of §II-B objective 6.

use fsd_inference::comm::{CloudConfig, CloudEnv, VirtualTime};
use fsd_inference::core::{
    barrier, reduce, ChannelOptions, ChannelRegistry, FsiChannel, ObjectChannel, QueueChannel,
};
use fsd_inference::faas::{ComputeModel, FaasPlatform, FunctionConfig};
use fsd_inference::sparse::SparseRows;
use std::sync::Arc;

mod common;

/// Builds the env-selected channel (flow 0) through the provider registry
/// — the same construction path the service uses per request.
fn selected_channel(env: &Arc<CloudEnv>, p: u32) -> Arc<dyn FsiChannel> {
    let variant = common::test_variant();
    let name = variant.channel_name().expect("matrix selects channels");
    ChannelRegistry::with_builtins()
        .get(name)
        .unwrap_or_else(|| panic!("no provider for {variant}"))
        .provision(env, p, ChannelOptions::default(), 0)
}

fn rows_for(rank: u32) -> SparseRows {
    SparseRows::from_rows(
        4,
        [(
            rank * 5,
            vec![0u32, 2],
            vec![rank as f32 + 1.0, 2.0 * rank as f32 + 1.0],
        )],
    )
}

/// Runs barrier+reduce on `p` workers over `channel`; returns the root's
/// merged rows and each worker's finish time.
fn run_collective(
    env: Arc<CloudEnv>,
    channel: Arc<dyn FsiChannel>,
    p: u32,
) -> (SparseRows, Vec<VirtualTime>) {
    let platform = FaasPlatform::new(env, ComputeModel::default());
    let mut handles = Vec::new();
    for m in 0..p {
        let channel = channel.clone();
        handles.push(platform.invoke(
            FunctionConfig::worker(format!("w{m}"), 2048),
            VirtualTime::ZERO,
            move |ctx| {
                // Stagger arrival: worker m "computes" for m units first.
                ctx.charge_work(m as u64 * 100_000_000);
                barrier(channel.as_ref(), ctx, m, p, 0)?;
                let after_barrier = ctx.now();
                let out = reduce(channel.as_ref(), ctx, m, p, rows_for(m), 0)?;
                Ok((out, after_barrier))
            },
        ));
    }
    let mut root_rows = None;
    let mut finishes = Vec::new();
    for h in handles {
        let ((out, after_barrier), report) = h.join().expect("worker ok");
        if let Some(rows) = out {
            assert!(root_rows.is_none(), "only the root may hold the reduction");
            root_rows = Some(rows);
        }
        finishes.push(report.finished);
        let _ = after_barrier;
    }
    (root_rows.expect("root produced output"), finishes)
}

#[test]
fn reduce_collects_every_workers_rows_queue() {
    for p in [2u32, 4, 7] {
        let env = CloudEnv::new(CloudConfig::deterministic(p as u64));
        let ch = QueueChannel::setup(env.clone(), p, ChannelOptions::default());
        let (rows, _) = run_collective(env, ch, p);
        let expected_ids: Vec<u32> = (0..p).map(|m| m * 5).collect();
        assert_eq!(rows.ids(), &expected_ids[..], "queue P={p}");
        for m in 0..p {
            assert_eq!(
                rows.row_by_id(m * 5).expect("present").1[0],
                m as f32 + 1.0,
                "queue P={p} worker {m} values"
            );
        }
    }
}

#[test]
fn reduce_collects_every_workers_rows_object() {
    for p in [2u32, 5] {
        let env = CloudEnv::new(CloudConfig::deterministic(100 + p as u64));
        let ch = ObjectChannel::setup(env.clone(), p, ChannelOptions::default());
        let (rows, _) = run_collective(env, ch, p);
        assert_eq!(rows.n_rows(), p as usize, "object P={p}");
    }
}

#[test]
fn reduce_collects_every_workers_rows_env_variant() {
    // The CI channel matrix points this at each transport in turn.
    for p in [2u32, 4] {
        let env = CloudEnv::new(CloudConfig::deterministic(500 + p as u64));
        let ch = selected_channel(&env, p);
        let (rows, _) = run_collective(env, ch, p);
        let expected_ids: Vec<u32> = (0..p).map(|m| m * 5).collect();
        assert_eq!(
            rows.ids(),
            &expected_ids[..],
            "{} P={p}",
            common::test_variant()
        );
    }
}

#[test]
fn consecutive_barrier_rounds_env_variant() {
    let p = 3u32;
    let env = CloudEnv::new(CloudConfig::deterministic(600));
    let ch = selected_channel(&env, p);
    let platform = FaasPlatform::new(env, ComputeModel::default());
    let mut handles = Vec::new();
    for m in 0..p {
        let ch = ch.clone();
        handles.push(platform.invoke(
            FunctionConfig::worker(format!("w{m}"), 1024),
            VirtualTime::ZERO,
            move |ctx| {
                for round in 0..4 {
                    barrier(ch.as_ref(), ctx, m, p, round)?;
                }
                Ok(())
            },
        ));
    }
    for h in handles {
        h.join().expect("all rounds complete");
    }
}

#[test]
fn barrier_synchronizes_staggered_workers() {
    // Workers arrive at the barrier seconds apart (staggered compute);
    // nobody passes it until the slowest arrives, so finish times cluster.
    let p = 4u32;
    let env = CloudEnv::new(CloudConfig::deterministic(200));
    let ch = QueueChannel::setup(env.clone(), p, ChannelOptions::default());
    let (_, finishes) = run_collective(env, ch, p);
    let min = finishes.iter().min().expect("non-empty").as_secs_f64();
    let max = finishes.iter().max().expect("non-empty").as_secs_f64();
    // Worker compute stagger was (p-1) * 0.4 s ≈ 1.2 s; post-barrier spread
    // must be far smaller than that.
    assert!(
        max - min < 1.0,
        "barrier failed to synchronize: finish spread {:.2}s",
        max - min
    );
}

#[test]
fn single_worker_collectives_are_noops() {
    let env = CloudEnv::new(CloudConfig::deterministic(300));
    let ch = QueueChannel::setup(env.clone(), 1, ChannelOptions::default());
    let platform = FaasPlatform::new(env.clone(), ComputeModel::default());
    let (out, _) = platform
        .invoke(
            FunctionConfig::worker("solo", 1024),
            VirtualTime::ZERO,
            move |ctx| {
                barrier(ch.as_ref(), ctx, 0, 1, 0)?;
                reduce(ch.as_ref(), ctx, 0, 1, rows_for(0), 0)
            },
        )
        .join()
        .expect("solo ok");
    assert_eq!(out.expect("root keeps its own rows"), rows_for(0));
    // No communication should have happened at all.
    let snap = env.snapshot();
    assert_eq!(snap.sns_publish_requests, 0);
    assert_eq!(snap.s3_put_requests, 0);
}

#[test]
fn consecutive_barrier_rounds_do_not_collide() {
    let p = 3u32;
    let env = CloudEnv::new(CloudConfig::deterministic(400));
    let ch = QueueChannel::setup(env.clone(), p, ChannelOptions::default());
    let platform = FaasPlatform::new(env, ComputeModel::default());
    let mut handles = Vec::new();
    for m in 0..p {
        let ch = ch.clone();
        handles.push(platform.invoke(
            FunctionConfig::worker(format!("w{m}"), 1024),
            VirtualTime::ZERO,
            move |ctx| {
                for round in 0..5 {
                    barrier(ch.as_ref(), ctx, m, p, round)?;
                }
                Ok(ctx.now())
            },
        ));
    }
    for h in handles {
        h.join().expect("all rounds complete");
    }
}
