//! Cross-crate integration tests: every FSD-Inference variant must produce
//! the exact serial ground truth, limits must bind the way the paper
//! describes, and reports must be internally consistent.

use fsd_inference::core::{FsdError, FsdService, InferenceRequest, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_inference::partition::PartitionScheme;
use std::sync::{Arc, Mutex, MutexGuard};

mod common;

/// Engine runs spawn many threads and rely on short real-time grace
/// periods inside the simulated services; running them concurrently with
/// other engine tests starves producers and inflates (virtual) waiting.
/// Serialize them.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn engine_guard() -> MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn small_spec(seed: u64) -> DnnSpec {
    DnnSpec {
        neurons: 96,
        layers: 5,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed,
    }
}

fn service_for(spec: &DnnSpec, seed: u64) -> (FsdService, fsd_inference::sparse::SparseRows) {
    let dnn = Arc::new(generate_dnn(spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(24, seed));
    (ServiceBuilder::new(dnn).deterministic(seed).build(), inputs)
}

#[test]
fn serial_variant_matches_ground_truth() {
    let _guard = engine_guard();
    let spec = small_spec(1);
    let (service, inputs) = service_for(&spec, 1);
    let expected = service.dnn().serial_inference(&inputs);
    let report = service
        .submit(&InferenceRequest {
            variant: Variant::Serial,
            workers: 1,
            memory_mb: 2048,
            inputs,
        })
        .expect("serial runs");
    assert_eq!(report.first_output(), &expected);
    assert_eq!(report.workers, 1);
    // Serial has no communication charges.
    assert_eq!(report.comm.sns_publish_requests, 0);
    assert_eq!(report.comm.sqs_api_calls, 0);
    assert_eq!(report.comm.s3_put_requests, 0);
}

#[test]
fn queue_variant_matches_ground_truth_at_various_p() {
    let _guard = engine_guard();
    let spec = small_spec(2);
    let (service, inputs) = service_for(&spec, 2);
    let expected = service.dnn().serial_inference(&inputs);
    for p in [2u32, 3, 6] {
        let report = service
            .submit(&InferenceRequest {
                variant: Variant::Queue,
                workers: p,
                memory_mb: 1536,
                inputs: inputs.clone(),
            })
            .unwrap_or_else(|e| panic!("queue P={p}: {e}"));
        assert_eq!(
            report.first_output(),
            &expected,
            "queue P={p} output mismatch"
        );
        assert_eq!(report.per_worker.len(), p as usize, "one report per worker");
        assert!(
            report.comm.sns_publish_requests > 0,
            "queue run must publish"
        );
        assert!(report.comm.sqs_api_calls > 0, "queue run must poll");
    }
}

#[test]
fn object_variant_matches_ground_truth_at_various_p() {
    let _guard = engine_guard();
    let spec = small_spec(3);
    let (service, inputs) = service_for(&spec, 3);
    let expected = service.dnn().serial_inference(&inputs);
    for p in [2u32, 4, 7] {
        let report = service
            .submit(&InferenceRequest {
                variant: Variant::Object,
                workers: p,
                memory_mb: 1536,
                inputs: inputs.clone(),
            })
            .unwrap_or_else(|e| panic!("object P={p}: {e}"));
        assert_eq!(
            report.first_output(),
            &expected,
            "object P={p} output mismatch"
        );
        assert!(report.comm.s3_put_requests > 0, "object run must PUT");
        assert!(report.comm.s3_list_requests > 0, "object run must LIST");
        // Queue services untouched by the object channel.
        assert_eq!(report.comm.sns_publish_requests, 0);
    }
}

#[test]
fn hybrid_variant_matches_ground_truth_at_various_p() {
    let _guard = engine_guard();
    let spec = small_spec(14);
    let (service, inputs) = service_for(&spec, 14);
    let expected = service.dnn().serial_inference(&inputs);
    for p in [2u32, 3, 5] {
        let report = service
            .submit(&InferenceRequest {
                variant: Variant::Hybrid,
                workers: p,
                memory_mb: 1536,
                inputs: inputs.clone(),
            })
            .unwrap_or_else(|e| panic!("hybrid P={p}: {e}"));
        assert_eq!(
            report.first_output(),
            &expected,
            "hybrid P={p} output mismatch"
        );
        assert_eq!(report.variant, Variant::Hybrid);
        assert!(
            report.comm.sns_publish_requests > 0,
            "hybrid control plane must publish"
        );
        assert_eq!(
            report.comm.s3_list_requests, 0,
            "hybrid receivers poll queues, never LIST"
        );
    }
}

/// The CI channel matrix runs this suite once per transport, selecting the
/// variant with `FSD_TEST_VARIANT` — ground truth, per-worker reporting
/// and flow-scoped cleanup must hold identically on every channel.
#[test]
fn env_selected_variant_matches_ground_truth() {
    let _guard = engine_guard();
    let variant = common::test_variant();
    let spec = small_spec(15);
    let (service, inputs) = service_for(&spec, 15);
    let expected = service.dnn().serial_inference(&inputs);
    for p in [2u32, 4] {
        let report = service
            .submit(&InferenceRequest {
                variant,
                workers: p,
                memory_mb: 1536,
                inputs: inputs.clone(),
            })
            .unwrap_or_else(|e| panic!("{variant} P={p}: {e}"));
        assert_eq!(
            report.first_output(),
            &expected,
            "{variant} P={p} output mismatch"
        );
        assert_eq!(report.per_worker.len(), p as usize);
        assert_eq!(report.variant, variant);
    }
    // Whatever the transport held on the region is gone after teardown.
    assert_eq!(service.env().queue_count(), 0, "{variant} leaked queues");
    assert_eq!(service.env().pubsub().subscription_count(0), 0);
    for i in 0..service.env().config().n_buckets {
        assert_eq!(
            service
                .env()
                .object_store()
                .object_count(&fsd_inference::comm::bucket_name(i)),
            0,
            "{variant} leaked objects in bucket {i}"
        );
    }
}

#[test]
fn all_variants_agree_with_each_other() {
    let _guard = engine_guard();
    let spec = small_spec(4);
    let (service, inputs) = service_for(&spec, 4);
    let serial = service
        .submit(&InferenceRequest {
            variant: Variant::Serial,
            workers: 1,
            memory_mb: 2048,
            inputs: inputs.clone(),
        })
        .expect("serial");
    let queue = service
        .submit(&InferenceRequest {
            variant: Variant::Queue,
            workers: 4,
            memory_mb: 1536,
            inputs: inputs.clone(),
        })
        .expect("queue");
    let object = service
        .submit(&InferenceRequest {
            variant: Variant::Object,
            workers: 4,
            memory_mb: 1536,
            inputs,
        })
        .expect("object");
    assert_eq!(serial.first_output(), queue.first_output());
    assert_eq!(queue.first_output(), object.first_output());
}

#[test]
fn random_partitioning_still_correct_but_ships_more() {
    let _guard = engine_guard();
    let spec = small_spec(5);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(24, 5));
    let expected = dnn.serial_inference(&inputs);

    let hgp_service = ServiceBuilder::new(dnn.clone()).deterministic(5).build();
    let rp_service = ServiceBuilder::new(dnn)
        .deterministic(5)
        .partition_scheme(PartitionScheme::Random)
        .build();

    let req = InferenceRequest {
        variant: Variant::Object,
        workers: 4,
        memory_mb: 1536,
        inputs,
    };
    let hgp = hgp_service.submit(&req).expect("hgp");
    let rp = rp_service.submit(&req).expect("rp");
    assert_eq!(hgp.first_output(), &expected);
    assert_eq!(rp.first_output(), &expected);
    assert!(
        hgp.client.s3_bytes_put < rp.client.s3_bytes_put,
        "HGP bytes {} should undercut RP bytes {}",
        hgp.client.s3_bytes_put,
        rp.client.s3_bytes_put
    );
}

#[test]
fn serial_oom_on_oversized_model() {
    let _guard = engine_guard();
    // A model whose CSR footprint (~170 MB) exceeds the serial instance's
    // memory — the paper's N=65536 case, where neither FSD-Inf-Serial nor
    // Sage-SL-Inf could load the model. The service's serial memory is
    // lowered to Lambda's 128 MB floor to keep the test fast; the model is
    // built structurally (diagonal layers) so the test stays cheap.
    use fsd_inference::model::SparseDnn;
    use fsd_inference::sparse::CsrMatrix;
    let n: usize = 1 << 21;
    let spec = DnnSpec {
        neurons: n,
        layers: 5,
        nnz_per_row: 1,
        bias: -0.3,
        clip: 32.0,
        seed: 6,
    };
    let layers: Vec<CsrMatrix> = (0..spec.layers)
        .map(|_| {
            CsrMatrix::new(
                n,
                n,
                (0..=n).collect(),
                (0..n as u32).collect(),
                vec![0.5f32; n],
            )
            .expect("diagonal layer is valid CSR")
        })
        .collect();
    let dnn = Arc::new(SparseDnn::new(spec, layers));
    let inputs = generate_inputs(64, &InputSpec::scaled(4, 6));
    let service = ServiceBuilder::new(dnn)
        .deterministic(6)
        .serial_memory_mb(128)
        .build();
    let res = service.submit(&InferenceRequest {
        variant: Variant::Serial,
        workers: 1,
        memory_mb: 128,
        inputs,
    });
    match res {
        Err(FsdError::OutOfMemory {
            used_bytes,
            limit_bytes,
        }) => {
            assert!(used_bytes > limit_bytes);
        }
        other => panic!("expected OOM, got {other:?}"),
    }
}

#[test]
fn timeout_kills_underprovisioned_runs() {
    let _guard = engine_guard();
    // Extremely slow compute model → the 15-minute virtual limit binds
    // (the paper hit this with FSD-Inf-Queue, N = 65536, P = 8).
    let spec = small_spec(7);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(24, 7));
    let compute = fsd_inference::faas::ComputeModel {
        units_per_sec_per_vcpu: 50.0, // pathologically slow
        ..Default::default()
    };
    let service = ServiceBuilder::new(dnn)
        .deterministic(7)
        .compute(compute)
        .build();
    let res = service.submit(&InferenceRequest {
        variant: Variant::Queue,
        workers: 2,
        memory_mb: 1536,
        inputs,
    });
    match res {
        Err(FsdError::Timeout { .. }) => {}
        other => panic!("expected timeout, got {other:?}"),
    }
}

#[test]
fn cost_model_validation_predicted_vs_actual() {
    let _guard = engine_guard();
    // §VI-F: application-side predicted charges vs service-side metered
    // charges must agree tightly for both channels.
    let spec = small_spec(8);
    let (service, inputs) = service_for(&spec, 8);
    for variant in [Variant::Queue, Variant::Object] {
        let report = service
            .submit(&InferenceRequest {
                variant,
                workers: 4,
                memory_mb: 1536,
                inputs: inputs.clone(),
            })
            .expect("runs");
        let err = report.cost_actual.relative_error(&report.cost_predicted);
        assert!(
            err < 0.02,
            "{variant}: predicted {:.6} vs actual {:.6} ({err:.3} rel err)",
            report.cost_predicted.total(),
            report.cost_actual.total()
        );
    }
}

#[test]
fn report_latency_covers_all_workers() {
    let _guard = engine_guard();
    let spec = small_spec(9);
    let (service, inputs) = service_for(&spec, 9);
    let report = service
        .submit(&InferenceRequest {
            variant: Variant::Object,
            workers: 3,
            memory_mb: 1536,
            inputs,
        })
        .expect("runs");
    for w in &report.per_worker {
        assert!(
            w.finished <= report.latency,
            "worker {} finished after latency",
            w.rank
        );
        assert!(w.started < w.finished);
        assert!(w.billed_ms > 0);
    }
    assert!(report.per_sample_ms() > 0.0);
    assert!(report.avg_worker_runtime_s() > 0.0);
    assert!(report.work_done > 0);
    // Latency is anchored at the request's explicit arrival time.
    assert_eq!(report.arrival, fsd_inference::comm::VirtualTime::ZERO);
}

#[test]
fn deterministic_reruns_under_deterministic_config() {
    let _guard = engine_guard();
    // Latency components driven by virtual time must reproduce across runs
    // (thread scheduling may alter poll batching; outputs and core compute
    // must not change).
    let spec = small_spec(10);
    let (service, inputs) = service_for(&spec, 10);
    let r1 = service
        .submit(&InferenceRequest {
            variant: Variant::Object,
            workers: 4,
            memory_mb: 1536,
            inputs: inputs.clone(),
        })
        .expect("first run");
    let r2 = service
        .submit(&InferenceRequest {
            variant: Variant::Object,
            workers: 4,
            memory_mb: 1536,
            inputs,
        })
        .expect("second run");
    assert_eq!(r1.first_output(), r2.first_output());
    assert_eq!(r1.work_done, r2.work_done);
    assert_eq!(r1.client.s3_puts, r2.client.s3_puts);
}

#[test]
fn service_recommendation_follows_model_size() {
    let _guard = engine_guard();
    // A small model that fits one instance comfortably -> Serial.
    let (service, _) = service_for(&small_spec(12), 12);
    let rec = service.recommend(4, 8);
    assert_eq!(rec.variant, Variant::Serial);
    assert!(rec.profile.model_bytes < 1024 * 1024);
    // Serial is forced for P <= 1 regardless of size.
    let rec1 = service.recommend(1, 8);
    assert_eq!(rec1.variant, Variant::Serial);
}

#[test]
fn auto_variant_runs_the_recommended_path() {
    let _guard = engine_guard();
    // §IV-C end to end: an Auto request on a small model resolves to
    // Serial, runs, and reports the resolved variant.
    let spec = small_spec(13);
    let (service, inputs) = service_for(&spec, 13);
    let expected = service.dnn().serial_inference(&inputs);
    let report = service
        .submit(&InferenceRequest {
            variant: Variant::Auto,
            workers: 4,
            memory_mb: 1536,
            inputs,
        })
        .expect("auto runs");
    assert_eq!(report.variant, service.recommend(4, 8).variant);
    assert_eq!(report.first_output(), &expected);
}

#[test]
fn larger_batches_cost_more_but_amortize_per_sample() {
    let _guard = engine_guard();
    let spec = small_spec(11);
    let dnn = Arc::new(generate_dnn(&spec));
    let small_in = generate_inputs(spec.neurons, &InputSpec::scaled(8, 11));
    let big_in = generate_inputs(spec.neurons, &InputSpec::scaled(64, 11));
    let service = ServiceBuilder::new(dnn).deterministic(11).build();
    let small = service
        .submit(&InferenceRequest {
            variant: Variant::Queue,
            workers: 3,
            memory_mb: 1536,
            inputs: small_in,
        })
        .expect("small");
    let big = service
        .submit(&InferenceRequest {
            variant: Variant::Queue,
            workers: 3,
            memory_mb: 1536,
            inputs: big_in,
        })
        .expect("big");
    // Cost comparison uses the byte-driven components only: empty-poll
    // counts can wobble by a few calls with real-thread timing, while byte
    // volumes are deterministic functions of the workload.
    assert!(
        big.client.bytes_sent > small.client.bytes_sent,
        "bigger batches must ship more bytes"
    );
    assert!(
        big.per_sample_ms() < small.per_sample_ms(),
        "batching must amortize: big {:.2} ms vs small {:.2} ms",
        big.per_sample_ms(),
        small.per_sample_ms()
    );
}
