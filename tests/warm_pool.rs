//! Warm-tree pool acceptance: warm hits must skip the launch bill while
//! producing byte-identical outputs; the pool must evict on TTL, bound its
//! shelf, survive worker death without wedging the scheduler, and keep
//! per-flow billing disjoint across tree reuse.

use fsd_inference::core::{FsdService, InferenceRequest, LaunchPath, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_inference::sched::{Priority, Scheduler, SchedulerConfig};
use fsd_sparse::SparseRows;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialized with the other engine suites: every request spawns real
/// worker threads.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn engine_guard() -> MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn spec(seed: u64) -> DnnSpec {
    DnnSpec {
        neurons: 64,
        layers: 3,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed,
    }
}

/// A pooled service plus one input batch and its serial ground truth.
fn pooled_service(
    seed: u64,
    max_trees: usize,
    idle_ttl: u64,
) -> (Arc<FsdService>, SparseRows, SparseRows) {
    let spec = spec(seed);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(10, seed));
    let expected = dnn.serial_inference(&inputs);
    let service = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(seed)
            .warm_pool(max_trees, idle_ttl)
            .build(),
    );
    (service, inputs, expected)
}

fn request(inputs: &SparseRows, variant: Variant, workers: u32) -> InferenceRequest {
    InferenceRequest {
        variant,
        workers,
        memory_mb: 1769,
        inputs: inputs.clone(),
    }
}

#[test]
fn warm_hits_skip_launch_and_match_cold_outputs_on_both_channels() {
    let _guard = engine_guard();
    for (variant, seed) in [(Variant::Queue, 41), (Variant::Object, 42)] {
        let (service, inputs, expected) = pooled_service(seed, 4, u64::MAX);
        // Reference: the same request on an identically seeded pool-less
        // service (the original one-shot launch path).
        let oneshot = {
            let dnn = Arc::new(generate_dnn(&spec(seed)));
            let service = ServiceBuilder::new(dnn).deterministic(seed).build();
            service
                .submit(&request(&inputs, variant, 3))
                .expect("one-shot runs")
        };
        let cold = service
            .submit(&request(&inputs, variant, 3))
            .expect("cold run");
        let warm = service
            .submit(&request(&inputs, variant, 3))
            .expect("warm run");

        assert_eq!(cold.launch, LaunchPath::ColdStart, "{variant}");
        assert_eq!(warm.launch, LaunchPath::WarmHit, "{variant}");
        // Identical outputs across all three paths, equal to ground truth.
        assert_eq!(cold.first_output(), &expected, "{variant}");
        assert_eq!(warm.outputs, cold.outputs, "{variant}");
        assert_eq!(oneshot.outputs, cold.outputs, "{variant}");
        // The cold path pays the launch bill (coordinator + P workers,
        // exactly like the one-shot path); the warm path invokes nothing.
        assert_eq!(cold.lambda.invocations, 4, "{variant}");
        assert_eq!(oneshot.lambda.invocations, 4, "{variant}");
        assert_eq!(warm.lambda.invocations, 0, "{variant}");
        assert!(warm.lambda.mb_ms > 0, "{variant}: execution still bills");
        // And skips its latency: launch-to-first-output strictly below.
        assert!(
            warm.latency < cold.latency,
            "{variant}: warm {} must beat cold {}",
            warm.latency,
            cold.latency
        );
        // No leaked per-request resources on either path.
        assert_eq!(service.env().queue_count(), 0, "{variant}");
        assert_eq!(service.env().meter().tracked_flows(), 0, "{variant}");
        assert_eq!(
            service.platform().lambda_meter().tracked_flows(),
            0,
            "{variant}"
        );
    }
}

#[test]
fn warm_p50_is_strictly_below_cold_p50_under_the_deterministic_clock() {
    let _guard = engine_guard();
    let (service, inputs, _) = pooled_service(43, 2, u64::MAX);
    let req = request(&inputs, Variant::Queue, 3);
    let mut cold_us = Vec::new();
    let mut warm_us = Vec::new();
    for _ in 0..5 {
        // Invalidation forces the next request back onto the cold path.
        service.invalidate_warm_trees();
        let cold = service.submit(&req).expect("cold");
        assert_eq!(cold.launch, LaunchPath::ColdStart);
        cold_us.push(cold.latency.as_micros());
        let warm = service.submit(&req).expect("warm");
        assert_eq!(warm.launch, LaunchPath::WarmHit);
        warm_us.push(warm.latency.as_micros());
    }
    cold_us.sort_unstable();
    warm_us.sort_unstable();
    let (cold_p50, warm_p50) = (cold_us[cold_us.len() / 2], warm_us[warm_us.len() / 2]);
    assert!(
        warm_p50 < cold_p50,
        "warm p50 {warm_p50}µs must be strictly below cold p50 {cold_p50}µs"
    );
    // The deterministic clock makes every sample of a path identical.
    assert_eq!(cold_us.first(), cold_us.last());
    assert_eq!(warm_us.first(), warm_us.last());
}

#[test]
fn idle_ttl_evicts_parked_trees() {
    let _guard = engine_guard();
    // TTL of 2 pool ticks (checkout attempts).
    let (service, inputs, _) = pooled_service(44, 4, 2);
    let queue_req = request(&inputs, Variant::Queue, 2);
    let object_req = request(&inputs, Variant::Object, 2);
    assert_eq!(
        service
            .submit(&queue_req)
            .expect("parks a queue tree")
            .launch,
        LaunchPath::ColdStart
    );
    // Three other-shape requests age the parked queue tree past its TTL.
    for _ in 0..3 {
        service.submit(&object_req).expect("object runs");
    }
    let stats = service.warm_pool_stats().expect("pool enabled");
    assert!(stats.evicted_ttl >= 1, "queue tree must age out: {stats:?}");
    assert_eq!(
        service.submit(&queue_req).expect("re-launches").launch,
        LaunchPath::ColdStart,
        "an evicted tree cannot serve a warm hit"
    );
}

#[test]
fn full_shelf_evicts_the_lru_shape_instead_of_rejecting_the_checkin() {
    let _guard = engine_guard();
    // Shelf of one: a checkin on a full shelf evicts the
    // least-recently-used shape to park the (hotter) incoming tree.
    let (service, inputs, _) = pooled_service(45, 1, u64::MAX);
    let queue_req = request(&inputs, Variant::Queue, 2);
    let object_req = request(&inputs, Variant::Object, 2);
    service.submit(&queue_req).expect("queue parks");
    // The object tree's checkin finds the shelf full: the parked queue
    // tree (LRU shape) is evicted and the object tree parks.
    service.submit(&object_req).expect("object cold");
    let stats = service.warm_pool_stats().expect("pool enabled");
    assert_eq!(stats.evicted_lru, 1, "{stats:?}");
    assert_eq!(stats.idle, 1);
    // …so the recently used shape is warm and the evicted one is cold.
    assert_eq!(
        service.submit(&object_req).expect("object again").launch,
        LaunchPath::WarmHit
    );
    assert_eq!(
        service.submit(&queue_req).expect("queue again").launch,
        LaunchPath::ColdStart
    );
}

#[test]
fn lru_under_pressure_evicts_the_least_recently_used_shape() {
    let _guard = engine_guard();
    // Shelf of two, three shapes. Use order: Q2, O2, then Q3. At Q3's
    // checkin the shelf holds {Q2, O2}; Q2 is the least recently used
    // shape, so it is the victim — O2 and Q3 stay warm.
    let (service, inputs, _) = pooled_service(48, 2, u64::MAX);
    let q2 = request(&inputs, Variant::Queue, 2);
    let o2 = request(&inputs, Variant::Object, 2);
    let q3 = request(&inputs, Variant::Queue, 3);
    service.submit(&q2).expect("q2 parks");
    service.submit(&o2).expect("o2 parks");
    service.submit(&q3).expect("q3 evicts the LRU shape");
    let stats = service.warm_pool_stats().expect("pool enabled");
    assert_eq!(stats.evicted_lru, 1, "{stats:?}");
    assert_eq!(stats.idle, 2);
    assert_eq!(service.warm_idle_trees(Variant::Queue, 2, 1769), 0);
    assert_eq!(service.warm_idle_trees(Variant::Object, 2, 1769), 1);
    assert_eq!(service.warm_idle_trees(Variant::Queue, 3, 1769), 1);
    assert_eq!(
        service.submit(&o2).expect("o2 again").launch,
        LaunchPath::WarmHit
    );
    assert_eq!(
        service.submit(&q3).expect("q3 again").launch,
        LaunchPath::WarmHit
    );
    assert_eq!(
        service.submit(&q2).expect("q2 again").launch,
        LaunchPath::ColdStart,
        "the LRU shape was evicted"
    );
}

#[test]
fn wall_clock_reaper_evicts_by_real_idle_time_with_an_injected_clock() {
    let _guard = engine_guard();
    use fsd_inference::core::ManualClock;
    let spec = spec(49);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(10, 49));
    let clock = Arc::new(ManualClock::new());
    let service = ServiceBuilder::new(dnn)
        .deterministic(49)
        .warm_pool(4, u64::MAX)
        .warm_pool_wall_ttl(1_000)
        .warm_pool_clock(clock.clone())
        .build();
    let req = request(&inputs, Variant::Queue, 2);
    service.submit(&req).expect("parks a tree");
    // Young tree: a reaper pass keeps it, and it still serves warm.
    assert_eq!(service.reap_warm_trees(), 0);
    assert_eq!(
        service.submit(&req).expect("warm").launch,
        LaunchPath::WarmHit
    );
    // Idle past the wall TTL: the reaper evicts it. The tick TTL is
    // u64::MAX, so only the wall-clock path can be responsible.
    clock.advance_ms(1_500);
    assert_eq!(service.reap_warm_trees(), 1);
    let stats = service.warm_pool_stats().expect("pool enabled");
    assert_eq!(stats.evicted_wall, 1, "{stats:?}");
    assert_eq!(stats.idle, 0);
    assert_eq!(
        service.submit(&req).expect("re-launches").launch,
        LaunchPath::ColdStart
    );
}

#[test]
fn background_reaper_evicts_without_explicit_reap_calls() {
    let _guard = engine_guard();
    use fsd_inference::core::ManualClock;
    use std::time::Duration;
    let spec = spec(50);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(10, 50));
    // The injected manual clock controls *aging*; the background thread
    // only controls *when passes run*, so the test is timing-tolerant:
    // nothing can be evicted before the clock is advanced, and after it
    // is, some pass within the polling horizon must evict.
    let clock = Arc::new(ManualClock::new());
    let service = ServiceBuilder::new(dnn)
        .deterministic(50)
        .warm_pool(4, u64::MAX)
        .warm_pool_wall_ttl(100)
        .warm_pool_clock(clock.clone())
        .background_reaper(Duration::from_millis(5))
        .build();
    let req = request(&inputs, Variant::Queue, 2);
    service.submit(&req).expect("parks a tree");
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(
        service.warm_pool_stats().expect("pool").evicted_wall,
        0,
        "a frozen clock must never age trees"
    );
    clock.advance_ms(500);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if service.warm_pool_stats().expect("pool").evicted_wall >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background reaper never ran: {:?}",
            service.warm_pool_stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(service.warm_pool_stats().expect("pool").idle, 0);
}

#[test]
fn dead_worker_evicts_the_tree_without_wedging_the_scheduler() {
    let _guard = engine_guard();
    let (service, inputs, expected) = pooled_service(46, 4, u64::MAX);
    let sched = Scheduler::wrap(service.clone(), SchedulerConfig::default().global_cap(2));
    let req = || fsd_inference::core::BatchedRequest {
        variant: Variant::Queue,
        workers: 3,
        memory_mb: 1769,
        batches: vec![inputs.clone()],
    };
    // Park a tree, then arm a mid-request kill on one of its workers.
    sched
        .enqueue_default(Priority::Interactive, req())
        .expect("accepted")
        .wait()
        .expect("cold run parks the tree");
    assert!(
        service.inject_fault(FsdService::warm_worker_fault(Variant::Queue, 3, 1769, 1)),
        "a parked tree must match the injection shape"
    );
    // The next matching request loses worker 1 mid-request: the request
    // fails, the tree is evicted (not checked back in)…
    let err = sched
        .enqueue_default(Priority::Interactive, req())
        .expect("accepted")
        .wait()
        .expect_err("a dying instance must fail the request");
    let msg = err.to_string();
    assert!(
        msg.contains("terminated") || msg.contains("poisoned") || msg.contains("abort"),
        "unexpected failure detail: {msg}"
    );
    let stats = service.warm_pool_stats().expect("pool enabled");
    assert_eq!(stats.discarded_poisoned, 1, "{stats:?}");
    assert_eq!(stats.idle, 0, "the poisoned tree must not be re-shelved");
    // …the slot is released and the scheduler keeps serving: a fresh
    // request cold-launches a replacement tree and succeeds.
    assert_eq!(sched.inflight(), 0, "failure must release its slot");
    let recovered = sched
        .enqueue_default(Priority::Interactive, req())
        .expect("accepted")
        .wait()
        .expect("scheduler must keep serving after the eviction");
    assert_eq!(recovered.launch, LaunchPath::ColdStart);
    assert_eq!(recovered.first_output(), &expected);
    let sstats = sched.stats();
    assert_eq!(sstats.failed, 1);
    assert_eq!(sstats.completed, 2);
    assert_eq!(sstats.inflight, 0);
    // Even the failed request released its billing windows.
    assert_eq!(service.env().meter().tracked_flows(), 0);
    assert_eq!(service.platform().lambda_meter().tracked_flows(), 0);
    sched.shutdown();
    sched.drain();
}

#[test]
fn billing_stays_per_flow_disjoint_across_tree_reuse() {
    let _guard = engine_guard();
    let spec = spec(47);
    let dnn = Arc::new(generate_dnn(&spec));
    let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(10, 47));
    let expected = dnn.serial_inference(&inputs);
    // Two pre-warmed trees: both concurrent requests hit warm.
    let service = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(47)
            .warm_pool(2, u64::MAX)
            .prewarm_tree(Variant::Queue, 2, 1769)
            .prewarm_tree(Variant::Queue, 2, 1769)
            .build(),
    );
    let concurrent_round = || {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let service = service.clone();
                let inputs = inputs.clone();
                std::thread::spawn(move || {
                    service
                        .submit(&request(&inputs, Variant::Queue, 2))
                        .expect("warm run")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect::<Vec<_>>()
    };
    // Warm-up round: two concurrent checkouts necessarily take distinct
    // trees, so afterwards both launch cascades have fully completed and
    // the invocation counter is quiescent.
    for report in concurrent_round() {
        assert_eq!(report.launch, LaunchPath::WarmHit);
    }
    let before = service.platform().lambda_snapshot();
    let reports = concurrent_round();
    let after = service.platform().lambda_snapshot();
    let mut windows_mb_ms = 0;
    for report in &reports {
        assert_eq!(report.launch, LaunchPath::WarmHit);
        assert_eq!(report.first_output(), &expected);
        assert_eq!(report.lambda.invocations, 0);
        assert!(report.lambda.mb_ms > 0, "request window bills to its flow");
        assert!(report.comm.sqs_api_calls > 0, "comm bills request-locally");
        windows_mb_ms += report.lambda.mb_ms;
    }
    // Warm hits add no invocations, and the global duration billing grew
    // by exactly the two disjoint request windows.
    assert_eq!(after.invocations, before.invocations);
    assert_eq!(after.mb_ms - before.mb_ms, windows_mb_ms);
    // Nothing leaked: all flow windows were released at teardown.
    assert_eq!(service.env().meter().tracked_flows(), 0);
    assert_eq!(service.platform().lambda_meter().tracked_flows(), 0);
    let stats = service.warm_pool_stats().expect("pool enabled");
    assert_eq!(stats.hits, 4);
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.idle, 2, "both trees were checked back in");
}
