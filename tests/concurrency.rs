//! Concurrent serving: one `Arc<FsdService>` driven from many threads.
//!
//! The API redesign's acceptance test: request state (input keys, channel
//! queues, filter policies, object prefixes) is flow-scoped, so concurrent
//! requests — including several on the *same* channel variant, the case
//! that used to collide on shared queues and the global
//! `reset_channels()` wipe — must produce byte-identical outputs to the
//! same requests run sequentially.

use fsd_inference::core::{FsdService, InferenceRequest, ServiceBuilder, Variant};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_inference::sparse::SparseRows;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialized with the other engine suites: each of these tests spawns
/// many real threads itself.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn engine_guard() -> MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn service_with_inputs(seed: u64) -> (Arc<FsdService>, Vec<SparseRows>) {
    let spec = DnnSpec {
        neurons: 80,
        layers: 4,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let batches: Vec<SparseRows> = (0..8)
        .map(|i| {
            generate_inputs(
                spec.neurons,
                &InputSpec::scaled(10 + 2 * i, seed + i as u64),
            )
        })
        .collect();
    // Pre-warm every parallelism the requests will use so concurrent first
    // requests race on nothing but the request path itself.
    let service = Arc::new(
        ServiceBuilder::new(dnn)
            .deterministic(seed)
            .prewarm(1)
            .prewarm(2)
            .prewarm(3)
            .build(),
    );
    (service, batches)
}

/// The request mix: Queue/Object/Serial interleaved, several requests per
/// variant, differing worker counts.
fn request_mix(batches: &[SparseRows]) -> Vec<InferenceRequest> {
    let variants = [
        (Variant::Queue, 3u32),
        (Variant::Object, 2),
        (Variant::Serial, 1),
        (Variant::Queue, 2),
        (Variant::Object, 3),
        (Variant::Serial, 1),
        (Variant::Queue, 3),
        (Variant::Object, 2),
    ];
    variants
        .iter()
        .zip(batches)
        .map(|(&(variant, workers), inputs)| InferenceRequest {
            variant,
            workers,
            memory_mb: 1769,
            inputs: inputs.clone(),
        })
        .collect()
}

#[test]
fn concurrent_mixed_requests_match_sequential_outputs() {
    let _guard = engine_guard();
    let (service, batches) = service_with_inputs(41);
    let requests = request_mix(&batches);

    // Ground truth twice over: the serial oracle, and a sequential pass
    // through the service itself.
    let oracle: Vec<SparseRows> = requests
        .iter()
        .map(|r| service.dnn().serial_inference(&r.inputs))
        .collect();
    let sequential: Vec<SparseRows> = requests
        .iter()
        .map(|r| {
            service
                .submit(r)
                .expect("sequential run")
                .first_output()
                .clone()
        })
        .collect();

    // The same eight requests, one thread each, against one shared Arc.
    let handles: Vec<_> = requests
        .iter()
        .map(|r| {
            let service = service.clone();
            let req = r.clone();
            std::thread::spawn(move || {
                service
                    .submit(&req)
                    .map(|report| (report.variant, report.first_output().clone()))
            })
        })
        .collect();
    let concurrent: Vec<(Variant, SparseRows)> = handles
        .into_iter()
        .map(|h| {
            h.join()
                .expect("no panics")
                .expect("concurrent run succeeds")
        })
        .collect();

    for (i, ((variant, out), req)) in concurrent.iter().zip(&requests).enumerate() {
        assert_eq!(
            *variant, req.variant,
            "request {i} ran the requested variant"
        );
        assert_eq!(
            out, &sequential[i],
            "request {i}: concurrent != sequential output"
        );
        assert_eq!(out, &oracle[i], "request {i}: output != serial oracle");
    }

    // Every request's flow was torn down: no queues, no filter policies,
    // no intermediate objects left behind.
    assert_eq!(service.env().queue_count(), 0, "leaked per-request queues");
    for t in 0..service.env().pubsub().n_topics() {
        assert_eq!(
            service.env().pubsub().subscription_count(t),
            0,
            "leaked filter policies on topic {t}"
        );
    }
    for i in 0..service.env().config().n_buckets {
        assert_eq!(
            service
                .env()
                .object_store()
                .object_count(&fsd_inference::comm::bucket_name(i)),
            0,
            "leaked intermediate objects in bucket {i}"
        );
    }
    assert_eq!(service.requests_served(), 16, "8 sequential + 8 concurrent");
}

#[test]
fn same_variant_concurrency_does_not_cross_deliver() {
    let _guard = engine_guard();
    // The regression the flow-scoped redesign fixes: multiple simultaneous
    // Queue requests used to overwrite each other's filter-policy
    // subscriptions (same ranks, same topics) and share the same queues.
    let (service, batches) = service_with_inputs(43);
    let expected: Vec<SparseRows> = batches
        .iter()
        .take(4)
        .map(|b| service.dnn().serial_inference(b))
        .collect();

    let handles: Vec<_> = batches
        .iter()
        .take(4)
        .map(|inputs| {
            let service = service.clone();
            let req = InferenceRequest {
                variant: Variant::Queue,
                workers: 3,
                memory_mb: 1769,
                inputs: inputs.clone(),
            };
            std::thread::spawn(move || service.submit(&req).expect("queue run"))
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let report = h.join().expect("no panics");
        assert_eq!(
            report.first_output(),
            &expected[i],
            "queue request {i} got another request's data"
        );
        // Each request's client statistics are request-local: bytes shipped
        // are a deterministic function of its own workload.
        assert!(report.client.bytes_sent > 0);
    }
}

#[test]
fn concurrent_billing_windows_are_request_local_and_disjoint() {
    let _guard = engine_guard();
    // Per-flow metering: `InferenceReport::comm`/`lambda` must be
    // request-local deltas, not windows over a shared global meter. Run the
    // same mix sequentially (fresh service) and concurrently (another fresh
    // service, same seed): every request's billing must be identical in
    // both, because each request only ever sees its own traffic.
    let (sequential_service, batches) = service_with_inputs(53);
    let requests = request_mix(&batches);
    let baseline: Vec<_> = requests
        .iter()
        .map(|r| {
            let report = sequential_service.submit(r).expect("sequential run");
            (report.comm, report.lambda)
        })
        .collect();

    let (service, _) = service_with_inputs(53);
    let handles: Vec<_> = requests
        .iter()
        .map(|r| {
            let service = service.clone();
            let req = r.clone();
            std::thread::spawn(move || service.submit(&req).expect("concurrent run"))
        })
        .collect();
    let concurrent: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("no panics"))
        .collect();

    let mut comm_sum = fsd_inference::comm::MeterSnapshot::default();
    let mut lambda_sum = 0u64;
    for (i, report) in concurrent.iter().enumerate() {
        assert_eq!(
            report.comm, baseline[i].0,
            "request {i}: concurrent comm window differs from sequential — \
             billing leaked across overlapping flows"
        );
        assert_eq!(
            report.lambda, baseline[i].1,
            "request {i}: concurrent lambda window differs from sequential"
        );
        comm_sum = comm_sum.plus(&report.comm);
        lambda_sum += report.lambda.invocations;
    }

    // Disjointness: the per-request windows partition the region's billing.
    // Offline staging writes are unbilled and every billed event carries a
    // flow, so the global meters must equal the sum of the request windows
    // exactly — nothing double-counted, nothing unattributed.
    assert_eq!(
        service.env().snapshot(),
        comm_sum,
        "global meter != sum of request windows: flows overlap or leak"
    );
    assert_eq!(
        service.platform().lambda_snapshot().invocations,
        lambda_sum,
        "lambda invocations not fully attributed to flows"
    );

    // Both services released every flow bucket at request teardown.
    for svc in [&sequential_service, &service] {
        assert_eq!(svc.env().meter().tracked_flows(), 0, "leaked comm flows");
        assert_eq!(
            svc.platform().lambda_meter().tracked_flows(),
            0,
            "leaked lambda flows"
        );
    }
}

#[test]
fn auto_requests_can_run_concurrently() {
    let _guard = engine_guard();
    let (service, batches) = service_with_inputs(47);
    let expected: Vec<SparseRows> = batches
        .iter()
        .take(4)
        .map(|b| service.dnn().serial_inference(b))
        .collect();
    let handles: Vec<_> = batches
        .iter()
        .take(4)
        .map(|inputs| {
            let service = service.clone();
            let req = InferenceRequest {
                variant: Variant::Auto,
                workers: 3,
                memory_mb: 1769,
                inputs: inputs.clone(),
            };
            std::thread::spawn(move || service.submit(&req).expect("auto run"))
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let report = h.join().expect("no panics");
        assert_ne!(
            report.variant,
            Variant::Auto,
            "Auto must resolve to a concrete variant"
        );
        assert_eq!(
            report.first_output(),
            &expected[i],
            "auto request {i} wrong output"
        );
    }
}
