//! Shared helpers for the integration suites.

use fsd_inference::core::Variant;

/// The channel variant under test, selected by the `FSD_TEST_VARIANT`
/// environment variable (`queue` | `object` | `hybrid` | `direct`;
/// default `queue`).
/// The CI channel-matrix job sets it per matrix leg, so the same suites
/// exercise every transport.
///
/// # Panics
/// On an unrecognized value — a misconfigured matrix leg must fail loudly,
/// not silently test the default transport.
pub fn test_variant() -> Variant {
    match std::env::var("FSD_TEST_VARIANT") {
        Err(_) => Variant::Queue,
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "" | "queue" => Variant::Queue,
            "object" => Variant::Object,
            "hybrid" => Variant::Hybrid,
            "direct" => Variant::Direct,
            other => {
                panic!("FSD_TEST_VARIANT={other:?}: expected queue | object | hybrid | direct")
            }
        },
    }
}
