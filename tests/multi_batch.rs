//! Multi-batch requests (paper Fig. 1: "Batch 1 … Batch n, SYNC"): one
//! worker tree processes successive batches, with launch and weight loads
//! amortized and a barrier + reduce closing each batch.

use fsd_inference::core::{
    BatchedRequest, FsdError, FsdService, InferenceRequest, ServiceBuilder, Variant,
};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use std::sync::{Arc, Mutex, MutexGuard};

static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn engine_guard() -> MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn setup(seed: u64) -> (FsdService, Vec<fsd_inference::sparse::SparseRows>) {
    let spec = DnnSpec {
        neurons: 96,
        layers: 4,
        nnz_per_row: 8,
        bias: -0.25,
        clip: 32.0,
        seed,
    };
    let dnn = Arc::new(generate_dnn(&spec));
    let batches: Vec<_> = (0..3)
        .map(|b| {
            generate_inputs(
                spec.neurons,
                &InputSpec::scaled(16 + 8 * b, seed + b as u64),
            )
        })
        .collect();
    (
        ServiceBuilder::new(dnn).deterministic(seed).build(),
        batches,
    )
}

#[test]
fn batched_outputs_match_per_batch_ground_truth() {
    let _guard = engine_guard();
    let (service, batches) = setup(21);
    let expected: Vec<_> = batches
        .iter()
        .map(|b| service.dnn().serial_inference(b))
        .collect();
    for variant in [Variant::Queue, Variant::Object, Variant::Serial] {
        let report = service
            .submit_batched(&BatchedRequest {
                variant,
                workers: 3,
                memory_mb: 1769,
                batches: batches.clone(),
            })
            .unwrap_or_else(|e| panic!("{variant}: {e}"));
        assert_eq!(report.outputs.len(), 3, "{variant}: one output per batch");
        for (b, exp) in expected.iter().enumerate() {
            assert_eq!(&report.outputs[b], exp, "{variant}: batch {b} mismatch");
        }
        assert_eq!(report.samples, 16 + 24 + 32);
        assert_eq!(report.first_output(), &report.outputs[0]);
    }
}

#[test]
fn batching_amortizes_launch_and_weight_loads() {
    let _guard = engine_guard();
    let (service, batches) = setup(22);
    // Three batches in one tree…
    let together = service
        .submit_batched(&BatchedRequest {
            variant: Variant::Queue,
            workers: 3,
            memory_mb: 1769,
            batches: batches.clone(),
        })
        .expect("batched run");
    // …vs three separate single-batch runs.
    let mut separate_invocations = 0u64;
    let mut separate_latency = 0.0;
    for b in &batches {
        let r = service
            .submit(&InferenceRequest {
                variant: Variant::Queue,
                workers: 3,
                memory_mb: 1769,
                inputs: b.clone(),
            })
            .expect("single run");
        separate_invocations += r.lambda.invocations;
        separate_latency += r.latency.as_secs_f64();
    }
    // One tree instead of three: a third of the invocations…
    assert_eq!(together.lambda.invocations * 3, separate_invocations);
    // …and less total time (launch + weight loads paid once).
    assert!(
        together.latency.as_secs_f64() < separate_latency,
        "batched {:.2}s should beat {:.2}s total for separate runs",
        together.latency.as_secs_f64(),
        separate_latency
    );
}

#[test]
fn single_batch_request_is_equivalent_to_submit() {
    let _guard = engine_guard();
    let (service, batches) = setup(23);
    let single = service
        .submit(&InferenceRequest {
            variant: Variant::Object,
            workers: 2,
            memory_mb: 1769,
            inputs: batches[0].clone(),
        })
        .expect("submit");
    let batched = service
        .submit_batched(&BatchedRequest {
            variant: Variant::Object,
            workers: 2,
            memory_mb: 1769,
            batches: vec![batches[0].clone()],
        })
        .expect("submit_batched");
    assert_eq!(single.first_output(), batched.first_output());
    assert_eq!(single.outputs.len(), 1);
    assert_eq!(batched.outputs.len(), 1);
}

#[test]
fn empty_batch_list_is_a_structured_error() {
    let (service, _) = setup(24);
    let res = service.submit_batched(&BatchedRequest {
        variant: Variant::Serial,
        workers: 1,
        memory_mb: 1769,
        batches: vec![],
    });
    assert_eq!(res.unwrap_err(), FsdError::EmptyRequest);
}
