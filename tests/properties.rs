//! Property-based tests (proptest) on the core invariants:
//! codecs are lossless, kernels match dense references, partitions are
//! sound, and the distributed engine equals the serial oracle for
//! arbitrary models/batches/parallelism.

use fsd_inference::core::wire;
use fsd_inference::core::{
    ChannelOptions, FsiChannel, HybridChannel, QueueChannel, RecvTracker, Tag,
};
use fsd_inference::model::{generate_dnn, generate_inputs, DnnSpec, InputSpec};
use fsd_inference::partition::{partition_model, CommPlan, Hypergraph, PartitionScheme};
use fsd_inference::sparse::{codec, compress, CsrMatrix, SparseRows};
use proptest::prelude::*;

/// Strategy: a sparse row block with sorted ids/cols.
fn sparse_rows_strategy(max_rows: usize, width: usize) -> impl Strategy<Value = SparseRows> {
    let row = (0u32..width as u32, -100.0f32..100.0);
    proptest::collection::btree_map(
        0u32..(4 * max_rows as u32),
        proptest::collection::btree_map(0u32..width as u32, -100.0f32..100.0, 0..width.min(12)),
        0..max_rows,
    )
    .prop_map(move |rows| {
        let mut block = SparseRows::new(width);
        for (id, cells) in rows {
            if cells.is_empty() {
                continue;
            }
            let cols: Vec<u32> = cells.keys().copied().collect();
            let vals: Vec<f32> = cells.values().copied().collect();
            block.push_row(id, &cols, &vals);
        }
        block
    })
    .prop_filter("row strategy unused var", move |_| {
        let _ = &row;
        true
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrip(block in sparse_rows_strategy(20, 16)) {
        let encoded = codec::encode(&block);
        prop_assert_eq!(codec::encoded_size(&block), encoded.len());
        let back = codec::decode(&encoded).expect("decodes");
        prop_assert_eq!(back, block);
    }

    #[test]
    fn compress_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = compress::compress(&data);
        let back = compress::decompress(&c).expect("decompresses");
        prop_assert_eq!(back, data);
    }

    #[test]
    fn compress_then_codec_roundtrip(block in sparse_rows_strategy(16, 8)) {
        let wire_bytes = compress::compress(&codec::encode(&block));
        let back = codec::decode(&compress::decompress(&wire_bytes).expect("ok")).expect("ok");
        prop_assert_eq!(back, block);
    }

    #[test]
    fn csr_wire_roundtrip(
        triplets in proptest::collection::btree_map(
            (0u32..24, 0u32..24), -10.0f32..10.0, 0..64,
        )
    ) {
        let m = CsrMatrix::from_triplets(
            24, 24, triplets.into_iter().map(|((r, c), v)| (r, c, v)),
        ).expect("valid");
        let back = wire::decode_csr(&wire::encode_csr(&m)).expect("decodes");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn maps_wire_roundtrip(
        maps in proptest::collection::vec(
            proptest::collection::vec(
                (0u32..16, proptest::collection::btree_set(0u32..512, 1..20)),
                0..6,
            ),
            0..5,
        )
    ) {
        let maps: Vec<Vec<(u32, Vec<u32>)>> = maps
            .into_iter()
            .map(|layer| layer.into_iter().map(|(p, rows)| (p, rows.into_iter().collect())).collect())
            .collect();
        let back = wire::decode_maps(&wire::encode_maps(&maps)).expect("decodes");
        prop_assert_eq!(back, maps);
    }

    #[test]
    fn extract_preserves_rows(block in sparse_rows_strategy(24, 12), take_every in 1usize..4) {
        let wanted: Vec<u32> = block.ids().iter().copied().step_by(take_every).collect();
        let sub = block.extract(&wanted);
        for &id in &wanted {
            prop_assert_eq!(sub.row_by_id(id), block.row_by_id(id));
        }
        prop_assert_eq!(sub.nnz(), block.extract_nnz(&wanted));
    }

    #[test]
    fn split_merge_identity(block in sparse_rows_strategy(24, 12), max_nnz in 1usize..20) {
        let chunks = block.split_by_nnz(max_nnz);
        let mut merged = SparseRows::new(block.width());
        for c in &chunks {
            merged.merge(c);
        }
        prop_assert_eq!(merged, block);
    }

    #[test]
    fn partition_schemes_cover_each_vertex_once(
        neurons in 32usize..160,
        parts in 2usize..7,
        seed in 0u64..50,
    ) {
        let spec = DnnSpec { neurons, layers: 2, nnz_per_row: 4, bias: -0.2, clip: 32.0, seed };
        let dnn = generate_dnn(&spec);
        for scheme in [PartitionScheme::Hgp, PartitionScheme::Random, PartitionScheme::Block] {
            let part = partition_model(&dnn, parts, scheme, seed);
            prop_assert_eq!(part.n_vertices(), neurons);
            let covered: usize = (0..parts as u32).map(|q| part.owned(q).len()).sum();
            prop_assert_eq!(covered, neurons, "{:?}", scheme);
            // Owned lists are sorted, disjoint, and consistent with part_of.
            for q in 0..parts as u32 {
                let owned = part.owned(q);
                prop_assert!(owned.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(owned.iter().all(|&v| part.part_of(v) == q));
            }
        }
    }

    #[test]
    fn comm_plan_volume_equals_connectivity_cost(
        neurons in 32usize..128,
        parts in 2usize..6,
        seed in 0u64..30,
    ) {
        let spec = DnnSpec { neurons, layers: 3, nnz_per_row: 4, bias: -0.2, clip: 32.0, seed };
        let dnn = generate_dnn(&spec);
        let part = partition_model(&dnn, parts, PartitionScheme::Random, seed);
        let plan = CommPlan::build(&dnn, &part);
        let h = Hypergraph::from_dnn(&dnn);
        prop_assert_eq!(
            plan.total_row_sends(),
            h.connectivity_cost(part.assignment(), parts)
        );
    }

    #[test]
    fn serial_inference_outputs_bounded(
        neurons in 32usize..128,
        batch in 1usize..24,
        seed in 0u64..40,
    ) {
        let spec = DnnSpec { neurons, layers: 4, nnz_per_row: 6, bias: -0.25, clip: 32.0, seed };
        let dnn = generate_dnn(&spec);
        let inputs = generate_inputs(neurons, &InputSpec::scaled(batch, seed));
        let out = dnn.serial_inference(&inputs);
        for (_, _, vals) in out.iter() {
            prop_assert!(vals.iter().all(|&v| v > 0.0 && v <= spec.clip));
        }
    }
}

// Distributed == serial equality over random configurations. Engine runs
// spawn real threads, so keep the case count small and the models tiny.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn distributed_equals_serial_for_arbitrary_configs(
        neurons in 48usize..96,
        parts in 2u32..5,
        seed in 0u64..1000,
        variant_idx in 0usize..4,
    ) {
        use fsd_inference::core::{InferenceRequest, ServiceBuilder, Variant};
        use std::sync::Arc;
        let spec = DnnSpec { neurons, layers: 3, nnz_per_row: 6, bias: -0.25, clip: 32.0, seed };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(neurons, &InputSpec::scaled(12, seed));
        let expected = dnn.serial_inference(&inputs);
        let service = ServiceBuilder::new(dnn).deterministic(seed).build();
        let variant =
            [Variant::Queue, Variant::Object, Variant::Hybrid, Variant::Direct][variant_idx];
        let report = service
            .submit(&InferenceRequest { variant, workers: parts, memory_mb: 1536, inputs })
            .expect("run succeeds");
        prop_assert_eq!(report.first_output(), &expected);
    }
}

/// Runs `body` inside one simulated worker invocation (channel-level
/// property tests below).
fn with_worker_ctx<T: Send + 'static>(
    env: std::sync::Arc<fsd_inference::comm::CloudEnv>,
    body: impl FnOnce(&mut fsd_inference::faas::WorkerCtx) -> Result<T, fsd_inference::faas::FaasError>
        + Send
        + 'static,
) -> T {
    use fsd_inference::comm::VirtualTime;
    use fsd_inference::faas::{ComputeModel, FaasPlatform, FunctionConfig};
    let platform = FaasPlatform::new(env, ComputeModel::default());
    platform
        .invoke(FunctionConfig::worker("t", 2048), VirtualTime::ZERO, body)
        .join()
        .expect("test body ok")
        .0
}

// Hybrid spill boundaries: a payload exactly at the threshold, one byte
// under it, and far above it must all deliver rows bit-identical to the
// pure-queue path — the spill decision may move bytes between planes but
// never change what arrives — and a spilled flow's teardown must leave
// zero residual objects, queues or subscriptions.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hybrid_spill_boundaries_match_pure_queue(
        block in sparse_rows_strategy(24, 16),
        seed in 1u64..500,
    ) {
        use fsd_inference::comm::{bucket_name, CloudConfig, CloudEnv};
        prop_assume!(!block.is_empty());
        let wire = codec::encoded_size(&block);
        // spill iff serialized size > threshold: at and one-under stay
        // inline, far-above (and zero) thresholds spill.
        for (threshold, spills) in [(wire, false), (wire + 1, false), (wire / 8, true), (0, true)] {
            let env = CloudEnv::new(CloudConfig::deterministic(seed));
            let opts = ChannelOptions { spill_threshold: threshold, ..ChannelOptions::default() };
            let queue = QueueChannel::setup_scoped(env.clone(), 2, opts, 1);
            let hybrid = HybridChannel::setup_scoped(env.clone(), 2, opts, 2);
            let (q2, h2) = (queue.clone(), hybrid.clone());
            let (block_q, block_h) = (block.clone(), block.clone());
            with_worker_ctx(env.clone(), move |ctx| {
                q2.send_layer(ctx, Tag::Layer(0), 0, &[(1, block_q)])?;
                h2.send_layer(ctx, Tag::Layer(0), 0, &[(1, block_h)])
            });
            prop_assert_eq!(
                hybrid.stats().snapshot().s3_puts > 0,
                spills,
                "threshold {} vs wire {}: wrong spill decision",
                threshold,
                wire
            );
            let (q3, h3) = (queue.clone(), hybrid.clone());
            let (got_q, got_h) = with_worker_ctx(env.clone(), move |ctx| {
                let mut tq = RecvTracker::expecting([0u32]);
                let gq = q3.receive_all(ctx, Tag::Layer(0), 1, &mut tq)?;
                let mut th = RecvTracker::expecting([0u32]);
                let gh = h3.receive_all(ctx, Tag::Layer(0), 1, &mut th)?;
                Ok((gq, gh))
            });
            let merge = |blocks: Vec<(u32, SparseRows)>| {
                let mut m = SparseRows::new(block.width());
                for (_, b) in blocks {
                    m.merge(&b);
                }
                m
            };
            let (merged_q, merged_h) = (merge(got_q), merge(got_h));
            prop_assert_eq!(&merged_h, &merged_q, "hybrid diverged from queue");
            prop_assert_eq!(&merged_h, &block, "delivery lost rows");
            // Flow-namespaced cleanup holds for spilled flows too.
            queue.teardown();
            hybrid.teardown();
            prop_assert_eq!(env.queue_count(), 0);
            for t in 0..env.pubsub().n_topics() {
                prop_assert_eq!(env.pubsub().subscription_count(t), 0);
            }
            for i in 0..env.config().n_buckets {
                prop_assert_eq!(env.object_store().object_count(&bucket_name(i)), 0);
            }
        }
    }
}

// Predictor invariants: decisions are a deterministic pure function of
// the arrival history, warm targets never exceed the budget, and
// quiescent shapes converge to eviction. Pure state-machine properties —
// no engine threads — so the case count can stay high.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn predictor_decisions_are_deterministic_and_budgeted(
        arrivals in proptest::collection::vec((0usize..5, 1u32..4), 1..64),
        window in 1usize..24,
        burst_threshold in 1usize..5,
        max_warm in 0usize..10,
        quiet_after in 1u64..64,
    ) {
        use fsd_inference::core::{TreeKey, Variant};
        use fsd_inference::sched::{Predictor, PredictorConfig, PrewarmDecision};

        // Shape alphabet: index 0 is Serial (no tree), the rest map to
        // channel-variant shapes.
        let shape_of = |i: usize, p: u32| -> Option<TreeKey> {
            match i {
                0 => None,
                1 | 2 => Some(TreeKey { variant: Variant::Queue, workers: p, memory_mb: 1769 }),
                _ => Some(TreeKey { variant: Variant::Object, workers: p, memory_mb: 1769 }),
            }
        };
        let cfg = PredictorConfig::default()
            .window(window)
            .burst_threshold(burst_threshold)
            .max_warm(max_warm)
            .quiet_after(quiet_after);

        let mut a = Predictor::new(cfg);
        let mut b = Predictor::new(cfg);
        for &(i, p) in &arrivals {
            let shape = shape_of(i, p);
            let da = a.observe(shape);
            let db = b.observe(shape);
            // Determinism: identical histories yield identical decisions.
            prop_assert_eq!(&da, &db);
            // Budget: summed warm targets never exceed max_warm.
            let total: usize = da.iter().map(|d| match d {
                PrewarmDecision::Warm { target, .. } => *target,
                PrewarmDecision::Evict { .. } => 0,
            }).sum();
            prop_assert!(total <= max_warm,
                "targets {} exceed budget {}: {:?}", total, max_warm, da);
            // No shape is simultaneously warmed and evicted.
            for d in &da {
                if let PrewarmDecision::Evict { shape } = d {
                    prop_assert!(!da.iter().any(|o| matches!(
                        o, PrewarmDecision::Warm { shape: w, .. } if w == shape)));
                }
            }
        }
        // decisions() is pure: calling it twice changes nothing.
        prop_assert_eq!(a.decisions(), a.decisions());
    }

    #[test]
    fn predictor_quiescent_traffic_converges_to_zero_prewarms(
        arrivals in proptest::collection::vec(1usize..4, 1..24),
        quiet_after in 1u64..32,
    ) {
        use fsd_inference::core::{TreeKey, Variant};
        use fsd_inference::sched::{Predictor, PredictorConfig, PrewarmDecision};

        let shape_of = |i: usize| TreeKey {
            variant: if i.is_multiple_of(2) { Variant::Queue } else { Variant::Object },
            workers: 1 + (i % 3) as u32,
            memory_mb: 1769,
        };
        let cfg = PredictorConfig::default().quiet_after(quiet_after);
        let mut p = Predictor::new(cfg);
        let mut seen = std::collections::BTreeSet::new();
        for &i in &arrivals {
            let s = shape_of(i);
            seen.insert(s);
            p.observe(Some(s));
        }
        // Traffic stops: only no-tree arrivals past the horizon.
        let mut last = Vec::new();
        for _ in 0..(quiet_after + cfg.window as u64) {
            last = p.observe(None);
        }
        prop_assert!(
            !last.iter().any(|d| matches!(d, PrewarmDecision::Warm { .. })),
            "quiescent traffic must emit no warm targets: {:?}", last
        );
        // Every shape ever seen has a standing eviction.
        for s in &seen {
            prop_assert!(
                last.contains(&PrewarmDecision::Evict { shape: *s }),
                "missing eviction for {:?}: {:?}", s, last
            );
        }
    }
}

// Chaos determinism and payload conservation: a run under a seeded fault
// plan is a pure function of (plan seed, workload) — replaying the same
// service three times yields bit-identical latencies, billing windows,
// failed-attempt bills and injection counts — and injected transient
// faults never corrupt payloads: every request that survives its retries
// returns exactly the serial oracle's outputs, and teardown leaves zero
// residue either way. Real engine threads per case, so the count is small.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn chaos_replays_are_bit_identical_and_conserve_payloads(
        fault_seed in 0u64..1000,
        model_seed in 0u64..100,
        variant_idx in 0usize..4,
        parts in 2u32..4,
    ) {
        use fsd_inference::comm::{CloudConfig, FaultPlan};
        use fsd_inference::core::{InferenceRequest, ServiceBuilder, Variant};
        use std::sync::Arc;

        let spec = DnnSpec {
            neurons: 64, layers: 2, nnz_per_row: 6, bias: -0.25, clip: 32.0, seed: model_seed,
        };
        let dnn = Arc::new(generate_dnn(&spec));
        let inputs = generate_inputs(spec.neurons, &InputSpec::scaled(8, model_seed));
        let expected = dnn.serial_inference(&inputs);
        let variant =
            [Variant::Queue, Variant::Object, Variant::Hybrid, Variant::Direct][variant_idx];

        let replay = || -> Result<_, String> {
            let cloud = CloudConfig::deterministic(model_seed)
                .with_faults(FaultPlan::uniform_transient(fault_seed, 0.05));
            let service = ServiceBuilder::new(dnn.clone())
                .cloud(cloud)
                .seed(model_seed)
                .build();
            let mut outcomes = Vec::new();
            for _ in 0..3 {
                let res = service.submit(&InferenceRequest {
                    variant,
                    workers: parts,
                    memory_mb: 1769,
                    inputs: inputs.clone(),
                });
                outcomes.push(match res {
                    Ok(report) => {
                        // Conservation: faults may delay or re-send, but
                        // what arrives is exactly the oracle's answer.
                        if report.first_output() != &expected {
                            return Err("surviving run corrupted payload".into());
                        }
                        Ok((report.latency, report.comm, report.lambda))
                    }
                    Err(e) => Err(e.to_string()),
                });
            }
            // Fault or not, every flow released its namespaced state.
            service.env().assert_no_residue();
            Ok((
                outcomes,
                service.env().meter().snapshot(),
                service.failed_attempt_bill(),
                service.env().faults().stats(),
            ))
        };

        let a = replay()?;
        let b = replay()?;
        let c = replay()?;
        prop_assert_eq!(&a, &b, "replay 2 diverged from replay 1");
        prop_assert_eq!(&b, &c, "replay 3 diverged from replay 2");
    }
}

// Scheduler invariants over arbitrary configurations and request mixes.
// Each case drives a real scheduler (auto dispatch, real worker threads),
// so the case count stays small and the models tiny.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn scheduler_invariants_hold_for_arbitrary_configs(
        global_cap in 1usize..4,
        queue_capacity in 1usize..5,
        w_interactive in 1u32..4,
        w_batch in 1u32..4,
        n_requests in 6usize..16,
        seed in 0u64..500,
    ) {
        use fsd_inference::core::{BatchedRequest, FsdError, ServiceBuilder, Variant};
        use fsd_inference::sched::{Priority, Scheduler, SchedulerConfig};
        use std::sync::Arc;

        let spec = DnnSpec { neurons: 56, layers: 2, nnz_per_row: 6, bias: -0.25, clip: 32.0, seed };
        let dnn = Arc::new(generate_dnn(&spec));
        let service = Arc::new(
            ServiceBuilder::new(dnn)
                .deterministic(seed)
                .prewarm(1)
                .prewarm(2)
                .build(),
        );
        let cfg = SchedulerConfig::default()
            .global_cap(global_cap)
            .queue_capacity(queue_capacity)
            .weights(w_interactive, w_batch);
        let sched = Scheduler::wrap(service.clone(), cfg);

        // A single-threaded enqueue flood: with tiny bounded queues some
        // arrivals are rejected with backpressure, the rest are accepted.
        let mut tickets = Vec::new();
        let mut rejections = 0u64;
        for i in 0..n_requests {
            let priority = if i % 3 == 2 { Priority::Batch } else { Priority::Interactive };
            let variant = match i % 3 {
                0 => Variant::Serial,
                1 => Variant::Queue,
                _ => Variant::Object,
            };
            let req = BatchedRequest {
                variant,
                workers: 1 + (i % 2) as u32,
                memory_mb: 1769,
                batches: vec![generate_inputs(spec.neurons, &InputSpec::scaled(4 + i % 4, seed + i as u64))],
            };
            match sched.enqueue_default(priority, req) {
                Ok(t) => tickets.push(t),
                Err(FsdError::Overloaded { retry_after }) => {
                    prop_assert!(retry_after > fsd_inference::comm::VirtualTime::ZERO);
                    rejections += 1;
                }
                Err(e) => return Err(format!("unexpected enqueue error: {e}")),
            }
        }

        // No starvation: every accepted request — both classes — completes.
        let accepted = tickets.len() as u64;
        for t in tickets {
            let report = t.wait().expect("accepted request completes");
            prop_assert!(!report.outputs.is_empty());
        }
        sched.shutdown();
        sched.drain();

        let stats = sched.stats();
        // Caps are never exceeded, not even transiently (high-water marks).
        prop_assert!(stats.max_inflight <= global_cap,
            "global cap {} exceeded: {}", global_cap, stats.max_inflight);
        let model_cap = sched.model_cap("default").expect("registered");
        for &m in &stats.max_inflight_per_model {
            prop_assert!(m <= model_cap, "model cap {} exceeded: {}", model_cap, m);
        }
        // Conservation: every enqueue attempt is accounted exactly once.
        prop_assert_eq!(stats.enqueued, accepted);
        prop_assert_eq!(stats.total_admitted(), accepted);
        prop_assert_eq!(stats.total_rejected(), rejections);
        prop_assert_eq!(stats.completed, accepted);
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.queued, 0);
        prop_assert_eq!(stats.inflight, 0);

        // Rejected requests leave nothing behind: no queues, subscriptions,
        // intermediate objects or per-flow meter buckets survive the drain.
        prop_assert_eq!(service.env().queue_count(), 0, "leaked queues");
        for t in 0..service.env().pubsub().n_topics() {
            prop_assert_eq!(service.env().pubsub().subscription_count(t), 0,
                "leaked filter policies on topic {}", t);
        }
        for i in 0..service.env().config().n_buckets {
            prop_assert_eq!(
                service.env().object_store().object_count(&fsd_inference::comm::bucket_name(i)),
                0, "leaked objects in bucket {}", i);
        }
        prop_assert_eq!(service.env().meter().tracked_flows(), 0, "leaked comm flows");
        prop_assert_eq!(service.platform().lambda_meter().tracked_flows(), 0, "leaked lambda flows");
    }
}
