//! Umbrella crate re-exporting the FSD-Inference public API.
#![forbid(unsafe_code)]

pub use fsd_baselines as baselines;
pub use fsd_comm as comm;
pub use fsd_core as core;
pub use fsd_faas as faas;
pub use fsd_model as model;
pub use fsd_partition as partition;
pub use fsd_sched as sched;
pub use fsd_sparse as sparse;
